//! The SparkScore analysis context and the paper's three algorithms.
//!
//! [`SparkScoreContext`] binds an engine to one analysis' inputs (genotype
//! matrix, phenotypes, SNP weights, SNP-sets) and exposes:
//!
//! * [`SparkScoreContext::observed`] — **Algorithm 1**: the observed SKAT
//!   statistics `S_k⁰`, computed as the RDD pipeline
//!   `textFile → parse → filter(union of SNP-sets) → U → U² →
//!   join(weights) → ω²U² → reduce_by_key(set)`;
//! * [`SparkScoreContext::permutation`] — **Algorithm 2**: B phenotype
//!   shufflings, each re-running the full pipeline (no caching — the
//!   replicate's `U` depends on the shuffled phenotypes);
//! * [`SparkScoreContext::monte_carlo`] — **Algorithm 3**: B draws of
//!   N(0,1) multipliers perturbing the *cached* `U` RDD
//!   (`Ũ_j = Σ_i Z_i U_ij`), the cache-friendly scheme whose speedups
//!   Figs 2–5 of the paper measure.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkscore_data::io::{
    parse_genotype_line, parse_phenotypes_text, parse_set_line, parse_weight_line,
};
use sparkscore_data::{DatasetPaths, GenotypeBlock, GwasDataset};
use sparkscore_dfs::DfsError;
use sparkscore_rdd::{Broadcast, BroadcastTileCache, Dataset, Engine};
use sparkscore_stats::linalg::perturb_rows_blocked;
use sparkscore_stats::pvalue::StoppingRule;
use sparkscore_stats::qc::{check_snp_packed, QcThresholds};
use sparkscore_stats::resample::{mc_weights, random_permutation, MC_TILE};
use sparkscore_stats::score::ScoreModel;
use sparkscore_stats::scratch;
use sparkscore_stats::skat::{burden_statistic, skat_statistic, SnpSet};

use crate::model::{Model, Phenotype};
use crate::result::{McGridRun, ObservedResult, ResamplingRun, SetScore, SnpQc, SnpResult};

/// Per-record cost hints (in engine work units of 25 virtual ns each)
/// modeling the reference platform — the paper's JVM/Spark 1.x stack —
/// whose per-record costs differ from native Rust by wildly different
/// factors per operation. Calibrated against Table III's observed pass
/// (≈509 s for 100 000 SNPs × 1000 patients with ~2 HDFS input blocks):
///
/// * reading + tokenizing + boxing one genotype dosage from text:
///   ≈ 10 µs  → 400 units per patient per line;
/// * computing one patient's Cox score contribution (boxed pipeline):
///   ≈ 2.5 µs → 100 units;
/// * one multiply-add over the *cached, deserialized* `U` arrays
///   (Algorithm 3's per-iteration work): ≈ 25 ns → 1 unit.
///
/// The three-orders-of-magnitude parse-vs-arithmetic gap is precisely the
/// asymmetry that makes the paper's cached Monte Carlo iterations so much
/// cheaper than permutation's full re-execution.
const JVM_UNITS_PARSE_PER_PATIENT: f64 = 400.0;
const JVM_UNITS_SCORE_PER_PATIENT: f64 = 100.0;
const JVM_UNITS_ARITH_PER_PATIENT: f64 = 1.0;
/// Parsing one small `"<snp> <weight>"` line.
const JVM_UNITS_PARSE_WEIGHT_LINE: f64 = 40.0;

/// How marginal scores combine into a SNP-set statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombineMethod {
    /// SKAT: `S_k = Σ_{j∈I_k} ω_j² U_j²` (the paper's statistic).
    #[default]
    Skat,
    /// Weighted burden: `S_k = (Σ_{j∈I_k} ω_j U_j)²` — powerful when
    /// member effects share a direction, weak when they cancel.
    Burden,
}

/// How SNP weights reach the per-SNP scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightsStrategy {
    /// Shuffle join against the weights RDD, exactly as the paper's
    /// Algorithm 1 step 9 prescribes.
    #[default]
    Join,
    /// Broadcast a dense weight table and look weights up map-side — an
    /// ablation of the paper's design: it removes two shuffle stages per
    /// resampling iteration at the cost of shipping all weights to every
    /// node once.
    Broadcast,
}

/// Tunables for an analysis.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Reduce-side partitions for the weights join and the per-set
    /// aggregation (Spark's `spark.default.parallelism` analogue).
    pub reduce_partitions: usize,
    /// SNP-set combination method.
    pub combine: CombineMethod,
    /// Weight-delivery strategy (ablation; the paper joins).
    pub weights_strategy: WeightsStrategy,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            reduce_partitions: 8,
            combine: CombineMethod::Skat,
            weights_strategy: WeightsStrategy::Join,
        }
    }
}

/// Tunables for a distributed-GEMM resampling run
/// ([`SparkScoreContext::monte_carlo_grid`]).
#[derive(Debug, Clone)]
pub struct McGridOptions {
    /// Replicate budget `B`.
    pub num_replicates: usize,
    /// Multiplier RNG seed (same stream as the sequential oracles).
    pub seed: u64,
    /// Replicate-tile width (one broadcast + one grid job per tile).
    pub tile: usize,
    /// Sequential stopping rule; `None` runs the fixed-B statistical
    /// oracle path.
    pub stopping: Option<StoppingRule>,
    /// Restrict the run to these set ids (e.g. one gene query); `None`
    /// scores every set.
    pub set_filter: Option<Vec<u64>>,
}

impl McGridOptions {
    /// Fixed-B run at the default tile width: bitwise identical to the
    /// sequential blocked oracle.
    pub fn fixed(num_replicates: usize, seed: u64) -> Self {
        McGridOptions {
            num_replicates,
            seed,
            tile: MC_TILE,
            stopping: None,
            set_filter: None,
        }
    }

    /// Adaptive run: tile rounds until every set's `rule` decision.
    pub fn adaptive(num_replicates: usize, seed: u64, rule: StoppingRule) -> Self {
        McGridOptions {
            num_replicates,
            seed,
            tile: MC_TILE,
            stopping: Some(rule),
            set_filter: None,
        }
    }
}

/// One analysis bound to an engine: inputs loaded, model fitted.
pub struct SparkScoreContext {
    engine: Arc<Engine>,
    phenotype: Phenotype,
    model: Model,
    /// `(snp, weight)` pairs — joined against `ω²U²` every pass.
    weights_rdd: Dataset<(u64, f64)>,
    /// Filtered genotype matrix: SNPs that appear in some set, 2-bit
    /// packed column-major per partition (4 dosages per byte, so cached
    /// partitions charge the LRU budget a quarter of the byte layout).
    fgm: Dataset<GenotypeBlock>,
    /// Dense `snp id → set id` lookup, broadcast to tasks.
    snp_to_set: Broadcast<Vec<u64>>,
    /// Dense `snp id → weight` table, present under
    /// [`WeightsStrategy::Broadcast`].
    weights_bc: Option<Broadcast<Vec<f64>>>,
    /// Sorted set ids, the row order of every result.
    set_ids: Vec<u64>,
    /// The SNP-sets themselves, sorted by id (aligned with `set_ids`) —
    /// the driver-side reduction of the resampling grid needs the member
    /// lists.
    sets: Vec<SnpSet>,
    /// One past the largest SNP id in any set: the extent of every dense
    /// per-SNP table.
    max_snp: usize,
    /// Memo of broadcast multiplier tiles keyed `(seed, start, width)`,
    /// shared across every grid run on this context so repeated
    /// same-seed queries ship each tile once.
    mc_tile_cache: BroadcastTileCache<(u64, u64, u64)>,
    options: AnalysisOptions,
}

impl SparkScoreContext {
    /// Load a survival analysis from DFS text files (the paper's setup:
    /// "Read input files from HDFS").
    pub fn from_dfs(
        engine: Arc<Engine>,
        paths: &DatasetPaths,
        options: AnalysisOptions,
    ) -> Result<Self, DfsError> {
        let phenotypes = parse_phenotypes_text(&engine.dfs().read_to_string(&paths.phenotypes)?);
        let sets: Vec<SnpSet> = engine
            .dfs()
            .read_to_string(&paths.sets)?
            .lines()
            .map(parse_set_line)
            .collect();
        let n = phenotypes.len() as f64;
        let weights_rdd = engine
            .text_file(&paths.weights)?
            .map_with_cost(JVM_UNITS_PARSE_WEIGHT_LINE, |l| parse_weight_line(&l));
        let gm = engine
            .text_file(&paths.genotypes)?
            .map_with_cost(n * JVM_UNITS_PARSE_PER_PATIENT, |l| parse_genotype_line(&l));
        Ok(Self::from_parts(
            engine,
            Phenotype::Survival(phenotypes),
            gm,
            weights_rdd,
            &sets,
            options,
        ))
    }

    /// Build an analysis from an in-memory synthetic dataset (skipping the
    /// DFS round-trip; `partitions` controls genotype parallelism).
    pub fn from_memory(
        engine: Arc<Engine>,
        dataset: &GwasDataset,
        partitions: usize,
        options: AnalysisOptions,
    ) -> Self {
        let rows: Vec<(u64, Vec<u8>)> = dataset
            .genotypes
            .iter()
            .map(|r| (r.id, r.dosages.clone()))
            .collect();
        let gm = engine.parallelize(rows, partitions);
        let weights: Vec<(u64, f64)> = dataset
            .weights
            .iter()
            .enumerate()
            .map(|(j, &w)| (j as u64, w))
            .collect();
        let weights_rdd = engine.parallelize(weights, partitions.clamp(1, 4));
        Self::from_parts(
            engine,
            Phenotype::Survival(dataset.phenotypes.clone()),
            gm,
            weights_rdd,
            &dataset.sets,
            options,
        )
    }

    /// Fully general constructor: any phenotype kind, any genotype/weight
    /// datasets (e.g. an eQTL analysis with a quantitative trait).
    pub fn from_parts(
        engine: Arc<Engine>,
        phenotype: Phenotype,
        gm: Dataset<(u64, Vec<u8>)>,
        weights_rdd: Dataset<(u64, f64)>,
        sets: &[SnpSet],
        options: AnalysisOptions,
    ) -> Self {
        assert!(!sets.is_empty(), "need at least one SNP-set");
        assert!(options.reduce_partitions > 0);
        // The kernels' thread-local scratch is the one byte-holding
        // subsystem the rdd crate cannot see (stats sits outside its
        // dependency cone), so the `scratch` ledger category is fed here,
        // where both sides are visible. Idempotent: re-registering on a
        // shared engine just replaces the same source.
        engine.memory_ledger().set_source(
            sparkscore_rdd::MemCategory::Scratch,
            scratch::allocated_bytes,
        );
        let model = Model::fit(&phenotype);

        // Union of all SNP-sets (Algorithm 1 step 4) for the matrix filter.
        let mut union: Vec<u64> = sets
            .iter()
            .flat_map(|s| s.members.iter().map(|&m| m as u64))
            .collect();
        union.sort_unstable();
        union.dedup();
        let max_snp = union.last().map_or(0, |&m| m as usize + 1);

        // Dense snp → set lookup (SNPs outside every set are filtered away
        // before this is consulted).
        let mut snp_to_set = vec![u64::MAX; max_snp];
        for set in sets {
            for &m in &set.members {
                snp_to_set[m] = set.id;
            }
        }

        let union_bc = engine.broadcast(union);
        let num_patients = phenotype.num_patients();
        let fgm = gm
            .filter(move |(snp, _)| union_bc.value().binary_search(snp).is_ok())
            .map_partitions(move |_, rows| vec![GenotypeBlock::from_rows(num_patients, rows)]);
        let snp_to_set = engine.broadcast(snp_to_set);
        let mut set_ids: Vec<u64> = sets.iter().map(|s| s.id).collect();
        set_ids.sort_unstable();
        let mut sets_sorted: Vec<SnpSet> = sets.to_vec();
        sets_sorted.sort_by_key(|s| s.id);

        // Under the broadcast ablation, gather the weights to the driver
        // once (one job) and ship a dense table to every node.
        let weights_bc = match options.weights_strategy {
            WeightsStrategy::Join => None,
            WeightsStrategy::Broadcast => {
                let mut dense = vec![0.0f64; max_snp];
                for (snp, w) in weights_rdd.collect() {
                    dense[snp as usize] = w;
                }
                Some(engine.broadcast(dense))
            }
        };

        let mc_tile_cache = BroadcastTileCache::new(Arc::clone(&engine), 256);
        SparkScoreContext {
            engine,
            phenotype,
            model,
            weights_rdd,
            fgm,
            snp_to_set,
            weights_bc,
            set_ids,
            sets: sets_sorted,
            max_snp,
            mc_tile_cache,
            options,
        }
    }

    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    pub fn num_patients(&self) -> usize {
        self.phenotype.num_patients()
    }

    pub fn num_sets(&self) -> usize {
        self.set_ids.len()
    }

    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The `U` RDD (Algorithm 1 step 7): per-SNP per-patient contributions
    /// under `model_bc`. Models with an affine per-dosage contribution
    /// (Gaussian, Binomial) score each 2-bit column directly through the
    /// popcount kernels; the rest unpack into a thread-local scratch slice
    /// and run the byte kernel. Kernel rows (and the packed subset) and
    /// scratch reuses are reported to the task metrics.
    fn u_rdd(&self, model_bc: &Broadcast<Model>) -> Dataset<(u64, Vec<f64>)> {
        let model = model_bc.clone();
        let n = self.num_patients();
        self.fgm.map_partitions_ctx(move |ctx, _, blocks| {
            let mut out = Vec::new();
            ctx.time_span("kernel:contributions", || {
                for block in blocks {
                    ctx.add_work(block.num_snps(), n as f64 * JVM_UNITS_SCORE_PER_PATIENT);
                    let mut packed_rows = 0u64;
                    scratch::with_u8(n, |g| {
                        for c in 0..block.num_snps() {
                            let mut contrib = vec![0.0; n];
                            let model = model.value();
                            if model.contributions_into_packed(block.column(c), &mut contrib) {
                                packed_rows += n as u64;
                            } else {
                                block.unpack_into(c, g);
                                model.contributions_into(g, &mut contrib);
                            }
                            out.push((block.snp_id(c), contrib));
                        }
                    });
                    ctx.add_kernel_rows((block.num_snps() * n) as u64);
                    ctx.add_packed_kernel_rows(packed_rows);
                }
            });
            ctx.add_scratch_reuses(scratch::take_reuses());
            out
        })
    }

    /// Per-SNP quality control over the filtered genotype matrix, sorted
    /// by SNP id. Counts, MAF, and Hardy–Weinberg all come straight from
    /// popcount passes over the packed columns — no byte dosages are ever
    /// materialized, so every QC kernel row is a packed row.
    pub fn qc(&self, thresholds: QcThresholds) -> Vec<SnpQc> {
        let n = self.num_patients();
        let mut rows: Vec<SnpQc> = self
            .fgm
            .map_partitions_ctx(move |ctx, _, blocks| {
                let mut out = Vec::new();
                ctx.time_span("kernel:qc", || {
                    for block in blocks {
                        ctx.add_work(block.num_snps(), n as f64 * JVM_UNITS_ARITH_PER_PATIENT);
                        for c in 0..block.num_snps() {
                            out.push(SnpQc {
                                snp: block.snp_id(c),
                                verdict: check_snp_packed(block.column(c), n, &thresholds),
                            });
                        }
                        let rows = (block.num_snps() * n) as u64;
                        ctx.add_kernel_rows(rows);
                        ctx.add_packed_kernel_rows(rows);
                    }
                });
                out
            })
            .collect();
        rows.sort_by_key(|r| r.snp);
        rows
    }

    /// Algorithm 1 steps 8–12 on a `U` RDD: inner sums (optionally with
    /// Monte Carlo multipliers), weights join, ω²U², per-set aggregation.
    fn set_scores_from_u(
        &self,
        u: &Dataset<(u64, Vec<f64>)>,
        mc_multipliers: Option<Broadcast<Vec<f64>>>,
    ) -> Vec<SetScore> {
        let arith_cost = self.num_patients() as f64 * JVM_UNITS_ARITH_PER_PATIENT;
        let inner = match mc_multipliers {
            // Observed pass: U_j = Σ_i U_ij.
            None => u.map_with_cost(arith_cost, |(snp, c)| {
                let s: f64 = c.iter().sum();
                (snp, s)
            }),
            // MC replicate: Ũ_j = Σ_i Z_i U_ij (Algorithm 3 step 4(I)a).
            Some(z) => u.map_with_cost(arith_cost, move |(snp, c)| {
                let s: f64 = c.iter().zip(z.value()).map(|(u, zi)| u * zi).sum();
                (snp, s)
            }),
        };
        let lookup = self.snp_to_set.clone();
        let combine = self.options.combine;
        // SKAT sums ω²U² per set; burden sums ωU per set and squares the
        // total.
        let weigh = move |u_stat: f64, w: f64| match combine {
            CombineMethod::Skat => w * w * u_stat * u_stat,
            CombineMethod::Burden => w * u_stat,
        };
        let per_snp_term = match &self.weights_bc {
            // Paper-faithful: shuffle join against the weights RDD.
            None => inner
                .join(&self.weights_rdd, self.options.reduce_partitions)
                .map(move |(snp, (u_stat, w))| (snp, weigh(u_stat, w))),
            // Ablation: look the weight up in a broadcast table map-side.
            Some(table) => {
                let table = table.clone();
                inner.map(move |(snp, u_stat)| (snp, weigh(u_stat, table.value()[snp as usize])))
            }
        };
        let per_set = per_snp_term
            .map(move |(snp, term)| (lookup.value()[snp as usize], term))
            .reduce_by_key(self.options.reduce_partitions, |a, b| a + b);
        let scores = per_set.collect_as_map();
        self.set_ids
            .iter()
            .map(|&id| {
                let raw = scores.get(&id).copied().unwrap_or(0.0);
                SetScore {
                    set: id,
                    score: match combine {
                        CombineMethod::Skat => raw,
                        CombineMethod::Burden => raw * raw,
                    },
                }
            })
            .collect()
    }

    /// The sorted set ids every result row order follows.
    pub fn set_ids(&self) -> &[u64] {
        &self.set_ids
    }

    /// Build the `U` contributions dataset once, for explicit sharing:
    /// callers that `cache()` the returned handle and reuse it across
    /// many score passes (e.g. a multi-tenant service answering gene
    /// queries over one cohort) materialize the contributions exactly
    /// once. Every call creates a fresh lineage (and cache key), so
    /// sharing requires sharing the returned `Dataset` handle itself.
    pub fn u_dataset(&self) -> Dataset<(u64, Vec<f64>)> {
        let model_bc = self.engine.broadcast(self.model.clone());
        self.u_rdd(&model_bc)
    }

    /// Algorithm 1 steps 8–12 over a caller-held `U` dataset (see
    /// [`SparkScoreContext::u_dataset`]): per-set scores, optionally
    /// under Monte Carlo multipliers (Algorithm 3's replicate pass).
    pub fn set_scores(
        &self,
        u: &Dataset<(u64, Vec<f64>)>,
        mc_multipliers: Option<Broadcast<Vec<f64>>>,
    ) -> Vec<SetScore> {
        self.set_scores_from_u(u, mc_multipliers)
    }

    /// Variant-by-variant analysis (the paper's other GWAS mode): marginal
    /// score, empirical variance, and χ²₁ asymptotic p-value per SNP,
    /// sorted by SNP id.
    pub fn per_snp_asymptotic(&self) -> Vec<SnpResult> {
        let model_bc = self.engine.broadcast(self.model.clone());
        let u = self.u_rdd(&model_bc);
        let mut rows: Vec<SnpResult> = u
            .map(|(snp, contribs)| {
                let (score, variance) = sparkscore_stats::score::score_and_variance(&contribs);
                (snp, score, variance)
            })
            .collect()
            .into_iter()
            .map(|(snp, score, variance)| SnpResult {
                snp,
                score,
                variance,
                pvalue: sparkscore_stats::asymptotic::score_test_pvalue(score, variance),
            })
            .collect();
        rows.sort_by_key(|r| r.snp);
        rows
    }

    /// **Algorithm 1**: observed SKAT statistics `S_k⁰` for every set.
    pub fn observed(&self) -> ObservedResult {
        let wall_start = Instant::now();
        let vt_start = self.engine.virtual_time_secs();
        let metrics_start = self.engine.metrics_snapshot();
        let model_bc = self.engine.broadcast(self.model.clone());
        let u = self.u_rdd(&model_bc);
        let scores = self.set_scores_from_u(&u, None);
        ObservedResult {
            scores,
            wall: wall_start.elapsed(),
            virtual_secs: self.engine.virtual_time_secs() - vt_start,
            metrics: self.engine.metrics_snapshot().delta_since(&metrics_start),
        }
    }

    /// **Algorithm 3**: Monte Carlo resampling with `num_replicates`
    /// N(0,1)-multiplier replicates. `use_cache` controls whether the `U`
    /// RDD is cached between iterations (the paper's Experiment B toggles
    /// exactly this).
    pub fn monte_carlo(&self, num_replicates: usize, seed: u64, use_cache: bool) -> ResamplingRun {
        let wall_start = Instant::now();
        let vt_start = self.engine.virtual_time_secs();
        let metrics_start = self.engine.metrics_snapshot();

        let model_bc = self.engine.broadcast(self.model.clone());
        let u = self.u_rdd(&model_bc);
        if use_cache {
            u.cache(); // Algorithm 3 step 2: "Cache RDD U".
        }
        let observed = self.set_scores_from_u(&u, None);

        let n = self.num_patients();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; observed.len()];
        for _ in 0..num_replicates {
            let z = self.engine.broadcast(mc_weights(&mut rng, n));
            let replicate = self.set_scores_from_u(&u, Some(z));
            for (count, (rep, obs)) in counts.iter_mut().zip(replicate.iter().zip(&observed)) {
                if rep.score >= obs.score {
                    *count += 1;
                }
            }
        }
        if use_cache {
            u.unpersist();
        }
        ResamplingRun {
            observed,
            counts_ge: counts,
            num_replicates,
            wall: wall_start.elapsed(),
            virtual_secs: self.engine.virtual_time_secs() - vt_start,
            metrics: self.engine.metrics_snapshot().delta_since(&metrics_start),
        }
    }

    /// Dense per-SNP weight table on the driver (index = SNP id).
    fn dense_weights(&self) -> Vec<f64> {
        match &self.weights_bc {
            Some(table) => table.value().clone(),
            None => {
                let mut dense = vec![0.0f64; self.max_snp];
                for (snp, w) in self.weights_rdd.collect() {
                    if (snp as usize) < self.max_snp {
                        dense[snp as usize] = w;
                    }
                }
                dense
            }
        }
    }

    /// `(hits, misses)` of the broadcast multiplier-tile cache.
    pub fn mc_tile_cache_stats(&self) -> (u64, u64) {
        self.mc_tile_cache.stats()
    }

    /// **Algorithm 3 as a distributed GEMM** over the replicate-tile ×
    /// partition grid, with optional adaptive early stopping.
    ///
    /// The `B × n` multiplier matrix is split into replicate tiles; each
    /// tile's `n × k` block is broadcast (memoized per `(seed, start,
    /// width)`) against the caller-held — typically cached — `U` dataset,
    /// and one engine task per `(tile × partition)` grid cell runs the
    /// blocked perturbation kernel over its partition's SNP rows. Cells
    /// return per-SNP perturbed scores; the driver scatters them by SNP id
    /// (a pure scatter — no cross-partition summation, so no floating-point
    /// reassociation) and reduces per set sequentially, which keeps the
    /// fixed-B path **bitwise identical** to the single-task
    /// `monte_carlo_blocked` oracle.
    ///
    /// With a [`StoppingRule`], tile rounds double as sequential looks:
    /// after each round every undecided set is tested, decided sets freeze
    /// their counts, and their member rows drop out of later grid cells
    /// (reported as `replicates_saved`). Multiplier tiles are always drawn
    /// in full so the stream stays aligned with the fixed-B oracle —
    /// adaptivity truncates per-set replicate streams, never re-randomizes
    /// them; the single-machine `monte_carlo_adaptive` is the exact
    /// semantic oracle.
    pub fn monte_carlo_grid(
        &self,
        u: &Dataset<(u64, Vec<f64>)>,
        opts: &McGridOptions,
    ) -> McGridRun {
        assert!(opts.tile > 0, "tile width must be positive");
        let wall_start = Instant::now();
        let vt_start = self.engine.virtual_time_secs();
        let metrics_start = self.engine.metrics_snapshot();

        let sets: Vec<&SnpSet> = match &opts.set_filter {
            None => self.sets.iter().collect(),
            Some(ids) => self.sets.iter().filter(|s| ids.contains(&s.id)).collect(),
        };
        assert!(!sets.is_empty(), "set filter selected no sets");

        let n = self.num_patients();
        let max_snp = self.max_snp;
        let weights = self.dense_weights();

        // Observed pass over the shared U handle: per-SNP scores scattered
        // into a dense table, then combined per set on the driver with the
        // same statistic functions (and summation order) as the oracle.
        let arith_cost = n as f64 * JVM_UNITS_ARITH_PER_PATIENT;
        let mut scores = vec![0.0f64; max_snp];
        for (snp, s) in u
            .map_with_cost(arith_cost, |(snp, c)| {
                let s: f64 = c.iter().sum();
                (snp, s)
            })
            .collect()
        {
            scores[snp as usize] = s;
        }
        let combine = self.options.combine;
        let stat = |scores: &[f64], set: &SnpSet| match combine {
            CombineMethod::Skat => skat_statistic(scores, &weights, set),
            CombineMethod::Burden => burden_statistic(scores, &weights, set),
        };
        let observed: Vec<f64> = sets.iter().map(|s| stat(&scores, s)).collect();

        // Rows the budget would spend work on: members of a selected set.
        let mut set_of_snp = vec![usize::MAX; max_snp];
        for (s, set) in sets.iter().enumerate() {
            for &j in &set.members {
                set_of_snp[j] = s;
            }
        }
        let scope_rows = set_of_snp.iter().filter(|&&s| s != usize::MAX).count();

        let b = opts.num_replicates;
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut counts = vec![0usize; sets.len()];
        let mut used = vec![0usize; sets.len()];
        let mut decided = vec![false; sets.len()];
        let mut replicates_run = 0u64;
        let mut perturbed = vec![0.0f64; max_snp];
        let mut tiles = 0usize;
        let mut done = 0usize;
        while done < b && decided.iter().any(|d| !d) {
            let k = opts.tile.min(b - done);
            // Draw the tile replicate-by-replicate — the oracle's exact
            // order — transposed into the patient-major kernel layout.
            let mut z_tile = vec![0.0f64; n * k];
            for kk in 0..k {
                for (i, zi) in mc_weights(&mut rng, n).into_iter().enumerate() {
                    z_tile[i * k + kk] = zi;
                }
            }
            let z = self
                .mc_tile_cache
                .get_or_broadcast((opts.seed, done as u64, k as u64), z_tile);

            // Per-SNP activity plane: 0 out of scope, 1 active, 2 member
            // of a decided set (skipped, counted as saved work).
            let mut activity = vec![0u8; max_snp];
            for (s, set) in sets.iter().enumerate() {
                let mark = if decided[s] { 2u8 } else { 1u8 };
                for &j in &set.members {
                    activity[j] = mark;
                }
            }
            let activity = self.engine.broadcast(activity);

            // One grid row: a task per U partition perturbing its active
            // rows under this tile's multipliers.
            let cells: Vec<(Vec<u64>, Vec<f64>)> = u.grid_cells(move |ctx, _part, rows| {
                let mut ids: Vec<u64> = Vec::new();
                let mut urows: Vec<&[f64]> = Vec::new();
                let mut skipped = 0u64;
                let act = activity.value();
                for (snp, c) in rows {
                    match act.get(*snp as usize).copied().unwrap_or(0) {
                        1 => {
                            ids.push(*snp);
                            urows.push(c.as_slice());
                        }
                        2 => skipped += 1,
                        _ => {}
                    }
                }
                let mut out = vec![0.0f64; urows.len() * k];
                ctx.time_span("kernel:perturb", || {
                    perturb_rows_blocked(&urows, n, z.value(), k, &mut out);
                });
                ctx.add_work(ids.len() * k, n as f64 * JVM_UNITS_ARITH_PER_PATIENT);
                ctx.add_kernel_rows((ids.len() * n * k) as u64);
                ctx.add_replicates_run((ids.len() * k) as u64);
                ctx.add_replicates_saved(skipped * k as u64);
                (ids, out)
            });

            replicates_run += cells
                .iter()
                .map(|(ids, _)| (ids.len() * k) as u64)
                .sum::<u64>();
            for kk in 0..k {
                // Scatter this replicate's perturbed scores by SNP id —
                // stale slots belong to decided or out-of-scope rows and
                // are never read below.
                for (ids, out) in &cells {
                    for (r, &snp) in ids.iter().enumerate() {
                        perturbed[snp as usize] = out[r * k + kk];
                    }
                }
                for (s, set) in sets.iter().enumerate() {
                    if decided[s] {
                        continue;
                    }
                    if stat(&perturbed, set) >= observed[s] {
                        counts[s] += 1;
                    }
                }
            }
            done += k;
            tiles += 1;
            if let Some(rule) = &opts.stopping {
                for s in 0..sets.len() {
                    if !decided[s] {
                        used[s] = done;
                        if rule.decided(counts[s], done) {
                            decided[s] = true;
                        }
                    }
                }
            } else {
                for slot in used.iter_mut() {
                    *slot = done;
                }
            }
        }

        let potential = (scope_rows * b) as u64;
        McGridRun {
            observed: sets
                .iter()
                .zip(&observed)
                .map(|(s, &score)| SetScore { set: s.id, score })
                .collect(),
            counts_ge: counts,
            replicates_used: used,
            max_replicates: b,
            replicates_run,
            replicates_saved: potential.saturating_sub(replicates_run),
            tiles,
            wall: wall_start.elapsed(),
            virtual_secs: self.engine.virtual_time_secs() - vt_start,
            metrics: self.engine.metrics_snapshot().delta_since(&metrics_start),
        }
    }

    /// [`SparkScoreContext::monte_carlo_grid`] over a fresh cached `U`
    /// dataset: builds the contributions, caches them for the tile jobs,
    /// runs the grid, and unpersists.
    pub fn monte_carlo_distributed(&self, opts: &McGridOptions) -> McGridRun {
        let u = self.u_dataset();
        u.cache();
        let run = self.monte_carlo_grid(&u, opts);
        u.unpersist();
        run
    }

    /// **Algorithm 2**: permutation resampling with `num_replicates`
    /// phenotype shufflings, each re-running the full score pipeline.
    pub fn permutation(&self, num_replicates: usize, seed: u64) -> ResamplingRun {
        let wall_start = Instant::now();
        let vt_start = self.engine.virtual_time_secs();
        let metrics_start = self.engine.metrics_snapshot();

        let model_bc = self.engine.broadcast(self.model.clone());
        let observed = self.set_scores_from_u(&self.u_rdd(&model_bc), None);

        let n = self.num_patients();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; observed.len()];
        for _ in 0..num_replicates {
            let perm = random_permutation(&mut rng, n);
            let shuffled = self.engine.broadcast(self.model.permuted(&perm));
            // "Recalculate step 6 to 12 of Algorithm 1" — a fresh U RDD
            // whose lineage re-reads and re-scores the genotype matrix.
            let replicate = self.set_scores_from_u(&self.u_rdd(&shuffled), None);
            for (count, (rep, obs)) in counts.iter_mut().zip(replicate.iter().zip(&observed)) {
                if rep.score >= obs.score {
                    *count += 1;
                }
            }
        }
        ResamplingRun {
            observed,
            counts_ge: counts,
            num_replicates,
            wall: wall_start.elapsed(),
            virtual_secs: self.engine.virtual_time_secs() - vt_start,
            metrics: self.engine.metrics_snapshot().delta_since(&metrics_start),
        }
    }

    /// Lineage of the `U` RDD pipeline (diagnostics).
    pub fn pipeline_lineage(&self) -> String {
        let model_bc = self.engine.broadcast(self.model.clone());
        self.u_rdd(&model_bc).lineage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkscore_cluster::ClusterSpec;
    use sparkscore_data::SyntheticConfig;

    fn small_context() -> SparkScoreContext {
        let engine = Engine::builder(ClusterSpec::test_small(3))
            .host_threads(2)
            .build();
        let ds = GwasDataset::generate(&SyntheticConfig::small(17));
        SparkScoreContext::from_memory(engine, &ds, 4, AnalysisOptions::default())
    }

    #[test]
    fn observed_scores_are_nonnegative_and_cover_all_sets() {
        let ctx = small_context();
        let obs = ctx.observed();
        assert_eq!(obs.scores.len(), 10);
        for s in &obs.scores {
            assert!(s.score >= 0.0, "SKAT is non-negative");
        }
        // Sorted by set id.
        for w in obs.scores.windows(2) {
            assert!(w[0].set < w[1].set);
        }
        assert!(obs.virtual_secs > 0.0);
    }

    #[test]
    fn observed_is_deterministic() {
        let a = small_context().observed();
        let b = small_context().observed();
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn mc_zero_iterations_equals_observed() {
        let ctx = small_context();
        let obs = ctx.observed();
        let run = ctx.monte_carlo(0, 1, true);
        assert_eq!(run.observed, obs.scores);
        assert_eq!(run.counts_ge, vec![0; 10]);
        assert_eq!(run.num_replicates, 0);
    }

    #[test]
    fn mc_cached_and_uncached_agree_on_counts() {
        let ctx = small_context();
        let cached = ctx.monte_carlo(20, 5, true);
        let uncached = ctx.monte_carlo(20, 5, false);
        assert_eq!(cached.counts_ge, uncached.counts_ge);
        assert_eq!(cached.observed, uncached.observed);
    }

    #[test]
    fn mc_cached_run_hits_cache() {
        let ctx = small_context();
        let run = ctx.monte_carlo(10, 3, true);
        assert!(
            run.metrics.cache_hits > 0,
            "MC iterations must reuse the cached U RDD: {:?}",
            run.metrics
        );
    }

    #[test]
    fn permutation_run_reports_structure() {
        let ctx = small_context();
        let run = ctx.permutation(5, 11);
        assert_eq!(run.num_replicates, 5);
        assert_eq!(run.counts_ge.len(), 10);
        for &c in &run.counts_ge {
            assert!(c <= 5);
        }
        let ps = run.pvalues();
        assert!(ps.iter().all(|&p| p > 0.0 && p <= 1.0));
    }

    #[test]
    fn broadcast_weights_match_join_weights() {
        let engine = Engine::builder(ClusterSpec::test_small(2))
            .host_threads(2)
            .build();
        let ds = GwasDataset::generate(&SyntheticConfig::small(23));
        let join =
            SparkScoreContext::from_memory(Arc::clone(&engine), &ds, 4, AnalysisOptions::default())
                .monte_carlo(15, 3, true);
        let engine2 = Engine::builder(ClusterSpec::test_small(2))
            .host_threads(2)
            .build();
        let bcast = SparkScoreContext::from_memory(
            engine2,
            &ds,
            4,
            AnalysisOptions {
                weights_strategy: crate::analysis::WeightsStrategy::Broadcast,
                ..AnalysisOptions::default()
            },
        )
        .monte_carlo(15, 3, true);
        assert_eq!(join.counts_ge, bcast.counts_ge);
        for (a, b) in join.observed.iter().zip(&bcast.observed) {
            assert!((a.score - b.score).abs() <= 1e-9 * (1.0 + b.score.abs()));
        }
    }

    use sparkscore_stats::resample::{monte_carlo_adaptive, monte_carlo_blocked};

    /// Dense oracle inputs indexed by SNP id: genotype rows, weights, and
    /// sets sorted by id — the layout under which the sequential oracles
    /// share the grid's summation order exactly.
    fn dense_oracle_inputs(ds: &GwasDataset, n: usize) -> (Vec<Vec<u8>>, Vec<f64>, Vec<SnpSet>) {
        let max_snp = ds.sets.iter().flat_map(|s| s.members.iter()).max().unwrap() + 1;
        let mut rows = vec![vec![0u8; n]; max_snp];
        for r in &ds.genotypes {
            if (r.id as usize) < max_snp {
                rows[r.id as usize] = r.dosages.clone();
            }
        }
        let mut weights = vec![0.0f64; max_snp];
        for (j, &w) in ds.weights.iter().enumerate() {
            if j < max_snp {
                weights[j] = w;
            }
        }
        let mut sets = ds.sets.clone();
        sets.sort_by_key(|s| s.id);
        (rows, weights, sets)
    }

    #[test]
    fn grid_fixed_b_is_bitwise_identical_to_blocked_oracle() {
        // Cox phenotype: both the grid's U pass and the oracle run the
        // byte kernel, so every float must match exactly — observed
        // statistics and exceedance counts alike — at the default tile
        // and at a width that doesn't divide B.
        let ctx = small_context();
        let ds = GwasDataset::generate(&SyntheticConfig::small(17));
        let (rows, weights, sets) = dense_oracle_inputs(&ds, ctx.num_patients());
        let u = ctx.u_dataset();
        u.cache();
        for (b, tile) in [(64usize, MC_TILE), (50, 7)] {
            let opts = McGridOptions {
                num_replicates: b,
                seed: 9,
                tile,
                stopping: None,
                set_filter: None,
            };
            let run = ctx.monte_carlo_grid(&u, &opts);
            let oracle = monte_carlo_blocked(ctx.model(), &rows, &weights, &sets, b, 9, tile);
            let grid_observed: Vec<f64> = run.observed.iter().map(|s| s.score).collect();
            assert_eq!(grid_observed, oracle.observed, "tile={tile}");
            assert_eq!(run.counts_ge, oracle.counts_ge, "tile={tile}");
            assert_eq!(run.replicates_used, vec![b; sets.len()]);
            assert_eq!(run.replicates_saved, 0, "fixed-B skips nothing");
            assert_eq!(run.tiles, b.div_ceil(tile));
        }
        u.unpersist();
    }

    #[test]
    fn grid_adaptive_matches_sequential_adaptive_oracle() {
        let ctx = small_context();
        let ds = GwasDataset::generate(&SyntheticConfig::small(17));
        let (rows, weights, sets) = dense_oracle_inputs(&ds, ctx.num_patients());
        let rule = StoppingRule::new(20, 0.2, 0.05);
        let opts = McGridOptions {
            num_replicates: 200,
            seed: 3,
            tile: 16,
            stopping: Some(rule),
            set_filter: None,
        };
        let u = ctx.u_dataset();
        u.cache();
        let run = ctx.monte_carlo_grid(&u, &opts);
        u.unpersist();
        let oracle = monte_carlo_adaptive(ctx.model(), &rows, &weights, &sets, 200, 3, 16, &rule);
        let grid_observed: Vec<f64> = run.observed.iter().map(|s| s.score).collect();
        assert_eq!(grid_observed, oracle.observed);
        assert_eq!(run.counts_ge, oracle.counts_ge);
        assert_eq!(run.replicates_used, oracle.replicates_used);
        assert_eq!(run.replicates_run, oracle.replicates_run);
        assert_eq!(run.replicates_saved, oracle.replicates_saved);
    }

    #[test]
    fn grid_set_filter_reproduces_the_full_runs_entry() {
        let ctx = small_context();
        let u = ctx.u_dataset();
        u.cache();
        let full = ctx.monte_carlo_grid(&u, &McGridOptions::fixed(40, 13));
        let target = full.observed[3].set;
        let one = ctx.monte_carlo_grid(
            &u,
            &McGridOptions {
                set_filter: Some(vec![target]),
                ..McGridOptions::fixed(40, 13)
            },
        );
        u.unpersist();
        assert_eq!(one.observed.len(), 1);
        assert_eq!(one.observed[0], full.observed[3]);
        assert_eq!(one.counts_ge[0], full.counts_ge[3]);
    }

    #[test]
    fn repeated_grid_runs_reuse_broadcast_tiles() {
        let ctx = small_context();
        let u = ctx.u_dataset();
        u.cache();
        let opts = McGridOptions::fixed(48, 21);
        let a = ctx.monte_carlo_grid(&u, &opts);
        let (h0, m0) = ctx.mc_tile_cache_stats();
        assert_eq!(m0, 2, "48 replicates at tile 32 broadcast two tiles");
        let b = ctx.monte_carlo_grid(&u, &opts);
        let (h1, m1) = ctx.mc_tile_cache_stats();
        u.unpersist();
        assert_eq!(a.counts_ge, b.counts_ge);
        assert_eq!(m1, m0, "a same-seed replay must not re-broadcast");
        assert_eq!(h1, h0 + 2);
    }

    #[test]
    fn grid_reports_replicate_counters_through_stage_summaries() {
        let (ctx, listener) =
            context_with_listener(|ds| Phenotype::Survival(ds.phenotypes.clone()));
        let rule = StoppingRule::new(20, 0.2, 0.05);
        let run = ctx.monte_carlo_distributed(&McGridOptions::adaptive(200, 3, rule));
        let (task_run, task_saved) = listener
            .summaries()
            .iter()
            .fold((0u64, 0u64), |(r, s), sum| {
                (r + sum.replicates_run, s + sum.replicates_saved)
            });
        assert_eq!(
            task_run, run.replicates_run,
            "driver total must equal the task-level sum"
        );
        assert!(run.replicates_run > 0);
        // Task-level saved counts only in-tile skips; the driver total
        // additionally credits tiles never launched.
        assert!(run.replicates_saved >= task_saved);
    }

    #[test]
    fn per_snp_asymptotic_shape() {
        let ctx = small_context();
        let rows = ctx.per_snp_asymptotic();
        assert_eq!(rows.len(), 200);
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.pvalue)));
    }

    #[test]
    fn pipeline_lineage_shows_inputs() {
        let ctx = small_context();
        let lineage = ctx.pipeline_lineage();
        assert!(lineage.contains("map"));
        assert!(lineage.contains("filter"));
        assert!(lineage.contains("parallelize"));
    }

    use sparkscore_rdd::{EventListener, StageSummaryListener};

    /// A context over the small synthetic genotypes with `phenotype`
    /// swapped in, plus a listener to observe per-stage kernel counters.
    fn context_with_listener(
        phenotype_of: impl Fn(&GwasDataset) -> Phenotype,
    ) -> (SparkScoreContext, Arc<StageSummaryListener>) {
        let listener = Arc::new(StageSummaryListener::new());
        let engine = Engine::builder(ClusterSpec::test_small(2))
            .host_threads(2)
            .listener(Arc::clone(&listener) as Arc<dyn EventListener>)
            .build();
        let ds = GwasDataset::generate(&SyntheticConfig::small(17));
        let rows: Vec<(u64, Vec<u8>)> = ds
            .genotypes
            .iter()
            .map(|r| (r.id, r.dosages.clone()))
            .collect();
        let gm = engine.parallelize(rows, 4);
        let weights: Vec<(u64, f64)> = ds
            .weights
            .iter()
            .enumerate()
            .map(|(j, &w)| (j as u64, w))
            .collect();
        let weights_rdd = engine.parallelize(weights, 2);
        let phenotype = phenotype_of(&ds);
        let ctx = SparkScoreContext::from_parts(
            engine,
            phenotype,
            gm,
            weights_rdd,
            &ds.sets,
            AnalysisOptions::default(),
        );
        (ctx, listener)
    }

    fn kernel_row_totals(listener: &StageSummaryListener) -> (u64, u64) {
        listener
            .summaries()
            .iter()
            .fold((0, 0), |(total, packed), s| {
                (total + s.kernel_rows, packed + s.packed_kernel_rows)
            })
    }

    #[test]
    fn gaussian_model_scores_every_row_on_the_packed_path() {
        let (ctx, listener) = context_with_listener(|ds| {
            Phenotype::Quantitative((0..ds.phenotypes.len()).map(|i| (i % 7) as f64).collect())
        });
        let obs = ctx.observed();
        assert_eq!(obs.scores.len(), 10);
        let (total, packed) = kernel_row_totals(&listener);
        assert!(total > 0, "the observed pass must report kernel rows");
        assert_eq!(
            packed, total,
            "an affine model must never unpack a genotype column"
        );
    }

    #[test]
    fn cox_model_falls_back_to_the_byte_kernel() {
        let (ctx, listener) =
            context_with_listener(|ds| Phenotype::Survival(ds.phenotypes.clone()));
        ctx.observed();
        let (total, packed) = kernel_row_totals(&listener);
        assert!(total > 0);
        assert_eq!(packed, 0, "Cox contributions are not affine in dosage");
    }

    #[test]
    fn packed_qc_matches_byte_oracle_per_snp() {
        let (ctx, listener) =
            context_with_listener(|ds| Phenotype::Survival(ds.phenotypes.clone()));
        let thresholds = QcThresholds::default();
        let verdicts = ctx.qc(thresholds);
        assert_eq!(verdicts.len(), 200, "every filtered SNP gets a verdict");
        for w in verdicts.windows(2) {
            assert!(w[0].snp < w[1].snp, "sorted by SNP id");
        }
        let ds = GwasDataset::generate(&SyntheticConfig::small(17));
        let by_id: std::collections::HashMap<u64, &Vec<u8>> =
            ds.genotypes.iter().map(|r| (r.id, &r.dosages)).collect();
        for q in &verdicts {
            let oracle = sparkscore_stats::qc::check_snp(by_id[&q.snp], &thresholds);
            assert_eq!(q.verdict, oracle, "snp {}", q.snp);
        }
        let (total, packed) = kernel_row_totals(&listener);
        assert!(total > 0);
        assert_eq!(packed, total, "QC never unpacks a genotype column");
    }
}
