//! **SparkScore** — distributed genomic inference with efficient score
//! statistics, reproduced in Rust.
//!
//! This crate is the application layer of the reproduction of *"SparkScore:
//! Leveraging Apache Spark for Distributed Genomic Inference"* (IPDPSW
//! 2016): the paper's Algorithms 1 (observed SKAT statistics), 2
//! (permutation resampling), and 3 (Monte Carlo resampling with a cached
//! `U` RDD), expressed as dataset pipelines on the from-scratch
//! `sparkscore-rdd` engine over the simulated cluster/DFS substrates.
//!
//! # Quick start
//!
//! ```
//! use sparkscore_cluster::ClusterSpec;
//! use sparkscore_core::{AnalysisOptions, SparkScoreContext};
//! use sparkscore_data::{GwasDataset, SyntheticConfig};
//! use sparkscore_rdd::Engine;
//!
//! // A 6-node cluster of the paper's m3.2xlarge instances.
//! let engine = Engine::builder(ClusterSpec::m3_2xlarge(6)).build();
//! // A small synthetic cohort (paper §III recipe).
//! let data = GwasDataset::generate(&SyntheticConfig::small(42));
//! let ctx = SparkScoreContext::from_memory(engine, &data, 4, AnalysisOptions::default());
//! // 99 Monte Carlo replicates with the U RDD cached (Algorithm 3).
//! let run = ctx.monte_carlo(99, 7, true);
//! for (set, p) in run.top_sets(3) {
//!     println!("set {set}: p = {p:.3}");
//! }
//! ```

pub mod analysis;
pub mod model;
pub mod result;
pub mod service;

pub use analysis::{
    AnalysisOptions, CombineMethod, McGridOptions, SparkScoreContext, WeightsStrategy,
};
pub use model::{Model, Phenotype};
pub use result::{McGridRun, ObservedResult, ResamplingRun, SetScore, SnpQc, SnpResult};
pub use service::{AnalysisService, QueryError, QueryResult};
