//! Phenotypes and score models as broadcast-friendly values.
//!
//! The engine broadcasts the precomputed score model to every (virtual)
//! node — Algorithm 1 step 6, "Broadcast Pairs of ⟨Event, Survival Time⟩
//! over all cluster nodes". [`Model`] wraps the three score models from
//! `sparkscore-stats` behind one broadcastable type, since a pipeline is
//! generic over phenotype kind at runtime (survival for the paper's GWAS
//! experiments, quantitative for eQTL, binary for case/control).

use sparkscore_rdd::EstimateSize;
use sparkscore_stats::covariates::AdjustedGaussianScore;
use sparkscore_stats::score::{BinomialScore, CoxScore, GaussianScore, ScoreModel, Survival};

/// Raw phenotype data for a cohort.
#[derive(Debug, Clone, PartialEq)]
pub enum Phenotype {
    /// Censored time-to-event, the paper's running example.
    Survival(Vec<Survival>),
    /// A quantitative trait (expression level, biomarker, BMI, …).
    Quantitative(Vec<f64>),
    /// A quantitative trait with baseline covariates to profile out —
    /// the capability the paper credits to Lin's Monte Carlo method
    /// ("it allows for incorporation of baseline covariates").
    QuantitativeAdjusted {
        values: Vec<f64>,
        /// One column per covariate, each of cohort length.
        covariates: Vec<Vec<f64>>,
    },
    /// Case/control status.
    CaseControl(Vec<bool>),
}

impl Phenotype {
    pub fn num_patients(&self) -> usize {
        match self {
            Phenotype::Survival(v) => v.len(),
            Phenotype::Quantitative(v) => v.len(),
            Phenotype::QuantitativeAdjusted { values, .. } => values.len(),
            Phenotype::CaseControl(v) => v.len(),
        }
    }
}

/// A precomputed score model, ready to broadcast into tasks.
#[derive(Debug, Clone)]
pub enum Model {
    Cox(CoxScore),
    Gaussian(GaussianScore),
    AdjustedGaussian(AdjustedGaussianScore),
    Binomial(BinomialScore),
}

impl Model {
    /// Build the appropriate model for a phenotype. Panics on collinear
    /// covariates — a configuration error, not a runtime condition.
    pub fn fit(phenotype: &Phenotype) -> Model {
        match phenotype {
            Phenotype::Survival(v) => Model::Cox(CoxScore::new(v)),
            Phenotype::Quantitative(v) => Model::Gaussian(GaussianScore::new(v)),
            Phenotype::QuantitativeAdjusted { values, covariates } => Model::AdjustedGaussian(
                AdjustedGaussianScore::new(values, covariates)
                    .expect("covariates must not be collinear"),
            ),
            Phenotype::CaseControl(v) => Model::Binomial(BinomialScore::new(v)),
        }
    }

    /// The model after shuffling phenotype pairs with `perm` (one
    /// permutation replicate, Algorithm 2).
    ///
    /// # Panics
    ///
    /// For covariate-adjusted models: plain permutation of the phenotype
    /// breaks the phenotype–covariate linkage and is not a valid null —
    /// this limitation of permutation resampling is exactly why the paper
    /// recommends Lin's Monte Carlo method when covariates are present.
    pub fn permuted(&self, perm: &[usize]) -> Model {
        match self {
            Model::Cox(m) => Model::Cox(m.permuted(perm)),
            Model::Gaussian(m) => Model::Gaussian(m.permuted(perm)),
            Model::AdjustedGaussian(_) => panic!(
                "permutation resampling does not support covariate adjustment; \
                 use Monte Carlo resampling (the paper's Algorithm 3)"
            ),
            Model::Binomial(m) => Model::Binomial(m.permuted(perm)),
        }
    }
}

impl ScoreModel for Model {
    fn num_patients(&self) -> usize {
        match self {
            Model::Cox(m) => m.num_patients(),
            Model::Gaussian(m) => m.num_patients(),
            Model::AdjustedGaussian(m) => m.num_patients(),
            Model::Binomial(m) => m.num_patients(),
        }
    }

    fn contributions_into(&self, g: &[u8], out: &mut [f64]) {
        match self {
            Model::Cox(m) => m.contributions_into(g, out),
            Model::Gaussian(m) => m.contributions_into(g, out),
            Model::AdjustedGaussian(m) => m.contributions_into(g, out),
            Model::Binomial(m) => m.contributions_into(g, out),
        }
    }

    fn contributions_into_packed(&self, packed: &[u8], out: &mut [f64]) -> bool {
        match self {
            Model::Cox(m) => m.contributions_into_packed(packed, out),
            Model::Gaussian(m) => m.contributions_into_packed(packed, out),
            Model::AdjustedGaussian(m) => m.contributions_into_packed(packed, out),
            Model::Binomial(m) => m.contributions_into_packed(packed, out),
        }
    }
}

impl EstimateSize for Model {
    fn estimate_bytes(&self) -> usize {
        // Phenotype pairs plus precomputed per-patient terms: ≈ 40 B per
        // patient for Cox (Survival + order + rank_end), more for the
        // adjusted model (design matrix columns), 8 B otherwise.
        let per_patient = match self {
            Model::Cox(_) => 40,
            Model::AdjustedGaussian(_) => 64,
            Model::Gaussian(_) | Model::Binomial(_) => 8,
        };
        self.num_patients() * per_patient
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn survival_phenotype() -> Phenotype {
        Phenotype::Survival(vec![
            Survival::event_at(2.0),
            Survival::censored_at(5.0),
            Survival::event_at(1.0),
        ])
    }

    #[test]
    fn fit_dispatches_on_phenotype_kind() {
        assert!(matches!(Model::fit(&survival_phenotype()), Model::Cox(_)));
        assert!(matches!(
            Model::fit(&Phenotype::Quantitative(vec![1.0, 2.0])),
            Model::Gaussian(_)
        ));
        assert!(matches!(
            Model::fit(&Phenotype::CaseControl(vec![true, false])),
            Model::Binomial(_)
        ));
    }

    #[test]
    fn wrapped_contributions_match_inner_model() {
        let ph = vec![
            Survival::event_at(2.0),
            Survival::event_at(4.0),
            Survival::censored_at(3.0),
        ];
        let model = Model::fit(&Phenotype::Survival(ph.clone()));
        let direct = CoxScore::new(&ph);
        let g = vec![1u8, 0, 2];
        assert_eq!(model.contributions(&g), direct.contributions(&g));
        assert_eq!(model.num_patients(), 3);
    }

    #[test]
    fn permuted_round_trips_through_wrapper() {
        let model = Model::fit(&Phenotype::Quantitative(vec![1.0, 5.0, 9.0]));
        let p = model.permuted(&[2, 0, 1]);
        let g = vec![0u8, 1, 2];
        // Identity permutation of the permuted model with inverse ordering
        // restores the original contributions (relabeling equivariance is
        // covered in stats; here we just check dispatch).
        assert_eq!(p.num_patients(), 3);
        assert_ne!(p.contributions(&g), model.contributions(&g));
    }

    #[test]
    fn adjusted_model_fits_and_scores() {
        let values = vec![1.0, 3.0, 2.0, 5.0, 4.0, 6.0];
        let covariates = vec![vec![0.0, 1.0, 0.5, 2.0, 1.5, 2.5]];
        let model = Model::fit(&Phenotype::QuantitativeAdjusted { values, covariates });
        assert!(matches!(model, Model::AdjustedGaussian(_)));
        let c = model.contributions(&[0, 1, 2, 0, 1, 2]);
        assert_eq!(c.len(), 6);
    }

    #[test]
    #[should_panic(expected = "does not support covariate adjustment")]
    fn adjusted_model_rejects_permutation() {
        let model = Model::fit(&Phenotype::QuantitativeAdjusted {
            values: vec![1.0, 2.0, 3.0],
            covariates: vec![],
        });
        let _ = model.permuted(&[2, 1, 0]);
    }

    #[test]
    fn estimate_size_scales_with_patients() {
        let small = Model::fit(&Phenotype::Quantitative(vec![0.0; 10]));
        let large = Model::fit(&Phenotype::Quantitative(vec![0.0; 1000]));
        assert!(large.estimate_bytes() > small.estimate_bytes());
    }

    #[test]
    fn phenotype_counts() {
        assert_eq!(survival_phenotype().num_patients(), 3);
        assert_eq!(Phenotype::CaseControl(vec![true; 7]).num_patients(), 7);
    }
}
