//! Analysis result types.

use std::time::Duration;

use sparkscore_rdd::{EstimateSize, MetricsSnapshot};
use sparkscore_stats::pvalue::empirical_pvalue;
use sparkscore_stats::qc::{GenotypeCounts, QcFailure};

/// One SNP-set's observed statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetScore {
    pub set: u64,
    pub score: f64,
}

/// One SNP's marginal (variant-by-variant) result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnpResult {
    pub snp: u64,
    /// Marginal score `U_j`.
    pub score: f64,
    /// Empirical variance `Σ_i U_ij²`.
    pub variance: f64,
    /// Asymptotic χ²₁ p-value of `U_j²/V_j`.
    pub pvalue: f64,
}

/// One SNP's quality-control verdict, computed directly on the packed
/// genotype column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnpQc {
    pub snp: u64,
    /// Genotype counts on pass; the first reason the SNP fails otherwise.
    pub verdict: Result<GenotypeCounts, QcFailure>,
}

impl EstimateSize for SnpQc {
    fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<SnpQc>()
    }
}

/// Result of an observed-statistics pass (Algorithm 1).
#[derive(Debug, Clone)]
pub struct ObservedResult {
    /// Per-set SKAT statistics `S_k⁰`, sorted by set id.
    pub scores: Vec<SetScore>,
    /// Real elapsed time of the pass.
    pub wall: Duration,
    /// Virtual cluster seconds consumed by the pass.
    pub virtual_secs: f64,
    /// Engine metric deltas for the pass.
    pub metrics: MetricsSnapshot,
}

/// Result of a resampling run (Algorithm 2 or 3).
#[derive(Debug, Clone)]
pub struct ResamplingRun {
    /// Observed statistics `S_k⁰`, sorted by set id.
    pub observed: Vec<SetScore>,
    /// `counter_k`: replicates with `S̃_k ≥ S_k⁰`, aligned with `observed`.
    pub counts_ge: Vec<usize>,
    /// Number of replicates `B`.
    pub num_replicates: usize,
    /// Real elapsed time, including the observed pass.
    pub wall: Duration,
    /// Virtual cluster seconds, including the observed pass.
    pub virtual_secs: f64,
    /// Engine metric deltas across the whole run.
    pub metrics: MetricsSnapshot,
}

/// Result of a distributed-GEMM resampling run (Algorithm 3 over the
/// replicate-tile × partition grid), optionally with adaptive early
/// stopping.
#[derive(Debug, Clone)]
pub struct McGridRun {
    /// Observed statistics `S_k⁰`, sorted by set id.
    pub observed: Vec<SetScore>,
    /// `counter_k`: replicates with `S̃_k ≥ S_k⁰`, aligned with `observed`.
    pub counts_ge: Vec<usize>,
    /// Replicates actually compared per set (equals `max_replicates`
    /// everywhere on the fixed-B path), aligned with `observed`.
    pub replicates_used: Vec<usize>,
    /// Replicate budget `B`.
    pub max_replicates: usize,
    /// Row-replicate units (one SNP row × one replicate) computed by grid
    /// tasks.
    pub replicates_run: u64,
    /// Row-replicate units the stopping rule avoided, measured against the
    /// `scope_rows × B` potential (covers both in-tile skips and tiles
    /// never launched).
    pub replicates_saved: u64,
    /// Replicate tiles executed.
    pub tiles: usize,
    /// Real elapsed time, including the observed pass.
    pub wall: Duration,
    /// Virtual cluster seconds, including the observed pass.
    pub virtual_secs: f64,
    /// Engine metric deltas across the whole run.
    pub metrics: MetricsSnapshot,
}

impl McGridRun {
    /// Add-one empirical p-values aligned with `observed`, each over the
    /// replicates its set actually saw.
    pub fn pvalues(&self) -> Vec<f64> {
        self.counts_ge
            .iter()
            .zip(&self.replicates_used)
            .map(|(&c, &b)| empirical_pvalue(c, b))
            .collect()
    }
}

impl ResamplingRun {
    /// Add-one empirical p-values aligned with `observed`.
    pub fn pvalues(&self) -> Vec<f64> {
        self.counts_ge
            .iter()
            .map(|&c| empirical_pvalue(c, self.num_replicates))
            .collect()
    }

    /// The sets ranked most-significant first: (set id, p-value).
    pub fn top_sets(&self, n: usize) -> Vec<(u64, f64)> {
        let mut ranked: Vec<(u64, f64)> = self
            .observed
            .iter()
            .zip(self.pvalues())
            .map(|(s, p)| (s.set, p))
            .collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("p-values are not NaN"));
        ranked.truncate(n);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> ResamplingRun {
        ResamplingRun {
            observed: vec![
                SetScore { set: 0, score: 5.0 },
                SetScore { set: 1, score: 1.0 },
                SetScore { set: 2, score: 9.0 },
            ],
            counts_ge: vec![49, 99, 0],
            num_replicates: 99,
            wall: Duration::from_secs(1),
            virtual_secs: 2.0,
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn pvalues_use_add_one_rule() {
        assert_eq!(run().pvalues(), vec![0.5, 1.0, 0.01]);
    }

    #[test]
    fn top_sets_ranks_by_pvalue() {
        let top = run().top_sets(2);
        assert_eq!(top[0], (2, 0.01));
        assert_eq!(top[1], (0, 0.5));
    }

    #[test]
    fn top_sets_truncates() {
        assert_eq!(run().top_sets(100).len(), 3);
        assert_eq!(run().top_sets(1).len(), 1);
    }
}
