//! Analysis façade over the multi-tenant [`JobService`]: cohorts with a
//! shared cached `U`, and gene-level queries submitted as service jobs.
//!
//! The paper's cache story is per-run: Algorithm 3 caches the `U`
//! contributions RDD so its own replicates reuse it. The service shape
//! scales that across *users*: one cohort's `U` is exactly the artifact
//! N tenants querying different genes all need, so
//! [`AnalysisService::register_cohort`] builds the `U` dataset **once**,
//! marks it cached, and every query job submitted against that cohort
//! reuses the same handle — the first query materializes it, every later
//! query (any tenant, any gene) hits the block cache. Because
//! `SparkScoreContext::u_dataset` mints a fresh lineage (and cache key)
//! per call, this handle sharing is the contract that makes cross-job
//! reuse real; the trace analyzer's cache-ROI section makes it visible.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sparkscore_rdd::{Dataset, JobService, RejectReason};
use sparkscore_stats::pvalue::StoppingRule;

use crate::analysis::{McGridOptions, SparkScoreContext};

/// One registered cohort: the analysis context plus the single shared
/// (cached) `U` dataset every query job reuses.
struct Cohort {
    name: String,
    ctx: SparkScoreContext,
    u: Dataset<(u64, Vec<f64>)>,
}

/// The result of one gene query job.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub tenant: String,
    pub cohort: String,
    /// The queried SNP-set (gene) id.
    pub set: u64,
    /// Observed SKAT/burden score of the set.
    pub score: f64,
    /// For Monte-Carlo queries: `(replicates ≥ observed, replicates)`,
    /// the empirical-p numerator and denominator.
    pub resample: Option<(usize, usize)>,
}

/// Why a query submission failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Admission control refused the job.
    Rejected(RejectReason),
    /// No cohort registered under that name.
    UnknownCohort,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Rejected(reason) => write!(f, "rejected: {reason}"),
            QueryError::UnknownCohort => write!(f, "unknown cohort"),
        }
    }
}

type ResultSlot = Arc<Mutex<Option<QueryResult>>>;

/// Multi-tenant analysis service: see the module docs.
pub struct AnalysisService {
    service: Arc<JobService>,
    cohorts: Mutex<BTreeMap<String, Arc<Cohort>>>,
    results: Mutex<BTreeMap<u64, ResultSlot>>,
}

impl AnalysisService {
    /// Wrap a running [`JobService`].
    pub fn new(service: Arc<JobService>) -> Self {
        AnalysisService {
            service,
            cohorts: Mutex::new(BTreeMap::new()),
            results: Mutex::new(BTreeMap::new()),
        }
    }

    /// The underlying job service (pause/resume, status, shutdown).
    pub fn job_service(&self) -> &Arc<JobService> {
        &self.service
    }

    /// Register `ctx` as cohort `name`, building its shared `U` dataset
    /// and marking it cached. Nothing is materialized yet — the first
    /// query over the cohort pays the one materialization every later
    /// query reuses. Re-registering a name replaces the cohort (the old
    /// cached blocks are unpersisted).
    pub fn register_cohort(&self, name: &str, ctx: SparkScoreContext) {
        let u = ctx.u_dataset();
        u.cache();
        let cohort = Arc::new(Cohort {
            name: name.to_string(),
            ctx,
            u,
        });
        if let Some(old) = self.cohorts.lock().insert(name.to_string(), cohort) {
            old.u.unpersist();
        }
    }

    /// Registered cohort names, sorted.
    pub fn cohorts(&self) -> Vec<String> {
        self.cohorts.lock().keys().cloned().collect()
    }

    fn cohort(&self, name: &str) -> Result<Arc<Cohort>, QueryError> {
        self.cohorts
            .lock()
            .get(name)
            .cloned()
            .ok_or(QueryError::UnknownCohort)
    }

    fn submit(
        &self,
        tenant: &str,
        payload: impl FnOnce(ResultSlot) -> Result<(), String> + Send + 'static,
    ) -> Result<u64, QueryError> {
        let slot: ResultSlot = Arc::new(Mutex::new(None));
        let job_slot = Arc::clone(&slot);
        let job = self
            .service
            .submit(tenant, move |_engine| payload(job_slot))
            .map_err(QueryError::Rejected)?;
        self.results.lock().insert(job, slot);
        Ok(job)
    }

    /// Submit an observed-score query for one SNP-set of `cohort`.
    pub fn submit_set_query(
        &self,
        tenant: &str,
        cohort: &str,
        set: u64,
    ) -> Result<u64, QueryError> {
        let cohort = self.cohort(cohort)?;
        let tenant_name = tenant.to_string();
        self.submit(tenant, move |slot| {
            let score = observed_set_score(&cohort, set)?;
            *slot.lock() = Some(QueryResult {
                tenant: tenant_name,
                cohort: cohort.name.clone(),
                set,
                score,
                resample: None,
            });
            Ok(())
        })
    }

    /// Submit a Monte-Carlo query (Algorithm 3 for a single set), run as
    /// a distributed GEMM over the cohort's shared cached `U`: the set's
    /// member rows are perturbed tile-by-tile and the multiplier tiles
    /// are memoized, so same-seed queries across tenants re-broadcast
    /// nothing.
    pub fn submit_mc_query(
        &self,
        tenant: &str,
        cohort: &str,
        set: u64,
        replicates: usize,
        seed: u64,
    ) -> Result<u64, QueryError> {
        let opts = McGridOptions {
            set_filter: Some(vec![set]),
            ..McGridOptions::fixed(replicates, seed)
        };
        self.submit_grid_query(tenant, cohort, set, opts)
    }

    /// Submit an adaptive Monte-Carlo query: tile rounds of multiplier
    /// replicates until `rule` decides the set's p-value (or the
    /// `max_replicates` budget runs out). The result's resample pair is
    /// `(count ≥ observed, replicates actually consumed)` — a bitwise
    /// prefix of the fixed-B stream at the same seed.
    pub fn submit_adaptive_mc_query(
        &self,
        tenant: &str,
        cohort: &str,
        set: u64,
        max_replicates: usize,
        seed: u64,
        rule: StoppingRule,
    ) -> Result<u64, QueryError> {
        let opts = McGridOptions {
            set_filter: Some(vec![set]),
            ..McGridOptions::adaptive(max_replicates, seed, rule)
        };
        self.submit_grid_query(tenant, cohort, set, opts)
    }

    fn submit_grid_query(
        &self,
        tenant: &str,
        cohort: &str,
        set: u64,
        opts: McGridOptions,
    ) -> Result<u64, QueryError> {
        let cohort = self.cohort(cohort)?;
        let tenant_name = tenant.to_string();
        self.submit(tenant, move |slot| {
            if cohort.ctx.set_ids().binary_search(&set).is_err() {
                return Err(format!("set {set} not in cohort {:?}", cohort.name));
            }
            let run = cohort.ctx.monte_carlo_grid(&cohort.u, &opts);
            *slot.lock() = Some(QueryResult {
                tenant: tenant_name,
                cohort: cohort.name.clone(),
                set,
                score: run.observed[0].score,
                resample: Some((run.counts_ge[0], run.replicates_used[0])),
            });
            Ok(())
        })
    }

    /// Block until `job` is terminal and take its result. `None` if the
    /// job failed, was cancelled, or was not submitted through this
    /// façade.
    pub fn wait_result(&self, job: u64) -> Option<QueryResult> {
        self.service.wait(job)?;
        let slot = self.results.lock().remove(&job)?;
        let result = slot.lock().take();
        result
    }
}

/// The observed score of one set over the cohort's shared `U`.
fn observed_set_score(cohort: &Cohort, set: u64) -> Result<f64, String> {
    cohort
        .ctx
        .set_scores(&cohort.u, None)
        .iter()
        .find(|s| s.set == set)
        .map(|s| s.score)
        .ok_or_else(|| format!("set {set} not in cohort {:?}", cohort.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisOptions;
    use sparkscore_cluster::ClusterSpec;
    use sparkscore_data::{GwasDataset, SyntheticConfig};
    use sparkscore_rdd::{Engine, TenantConfig};

    fn small_service() -> (AnalysisService, GwasDataset) {
        let engine = Engine::builder(ClusterSpec::test_small(3))
            .host_threads(2)
            .build();
        let ds = GwasDataset::generate(&SyntheticConfig::small(17));
        let ctx =
            SparkScoreContext::from_memory(Arc::clone(&engine), &ds, 4, AnalysisOptions::default());
        let service = JobService::builder(engine)
            .workers(1)
            .tenant("a", TenantConfig::default())
            .tenant("b", TenantConfig::default())
            .build();
        let analysis = AnalysisService::new(service);
        analysis.register_cohort("main", ctx);
        (analysis, ds)
    }

    #[test]
    fn set_query_matches_full_observed_pass() {
        let (svc, ds) = small_service();
        let engine = Engine::builder(ClusterSpec::test_small(3))
            .host_threads(2)
            .build();
        let oracle = SparkScoreContext::from_memory(engine, &ds, 4, AnalysisOptions::default())
            .observed()
            .scores;
        let set = oracle[3].set;
        let job = svc.submit_set_query("a", "main", set).unwrap();
        let result = svc.wait_result(job).expect("query result");
        assert_eq!(result.set, set);
        assert_eq!(result.tenant, "a");
        assert_eq!(result.cohort, "main");
        assert!((result.score - oracle[3].score).abs() <= 1e-12);
        svc.job_service()
            .shutdown(sparkscore_rdd::ShutdownMode::Drain);
    }

    #[test]
    fn queries_share_one_cached_u_materialization() {
        let (svc, _) = small_service();
        let engine = Arc::clone(svc.job_service().engine());
        let jobs: Vec<u64> = (0..4)
            .map(|i| svc.submit_set_query("b", "main", i).unwrap())
            .collect();
        for job in jobs {
            svc.wait_result(job).expect("query result");
        }
        let m = engine.metrics_snapshot();
        assert_eq!(
            m.cache_misses, 4,
            "U materialized once: one miss per partition, never again"
        );
        assert!(
            m.cache_hits >= 3 * 4,
            "later queries must hit the shared cache: {m:?}"
        );
        svc.job_service()
            .shutdown(sparkscore_rdd::ShutdownMode::Drain);
    }

    #[test]
    fn unknown_cohort_and_set_fail_cleanly() {
        let (svc, _) = small_service();
        assert_eq!(
            svc.submit_set_query("a", "nope", 0).unwrap_err(),
            QueryError::UnknownCohort
        );
        let job = svc.submit_set_query("a", "main", 999_999).unwrap();
        assert!(svc.wait_result(job).is_none(), "unknown set fails the job");
        assert_eq!(
            svc.job_service().job_state(job),
            Some(sparkscore_rdd::JobState::Failed)
        );
        let err = svc.job_service().job_error(job).unwrap();
        assert!(err.contains("set 999999"), "{err}");
    }

    #[test]
    fn mc_query_is_seed_deterministic() {
        let (svc, _) = small_service();
        let a = svc.submit_mc_query("a", "main", 2, 10, 42).unwrap();
        let b = svc.submit_mc_query("b", "main", 2, 10, 42).unwrap();
        let ra = svc.wait_result(a).unwrap();
        let rb = svc.wait_result(b).unwrap();
        assert_eq!(ra.resample, rb.resample, "same seed, same counts");
        assert_eq!(ra.score, rb.score);
        let (count, reps) = ra.resample.unwrap();
        assert_eq!(reps, 10);
        assert!(count <= reps);
    }

    #[test]
    fn adaptive_mc_query_stops_early_on_a_bitwise_prefix() {
        let (svc, _) = small_service();
        // half_width 0.2 is satisfied at the first 32-replicate tile, so
        // the query must stop far below the 400-replicate budget.
        let rule = StoppingRule::new(16, 0.2, 0.2);
        let job = svc
            .submit_adaptive_mc_query("a", "main", 2, 400, 7, rule)
            .unwrap();
        let r = svc.wait_result(job).unwrap();
        let (count, used) = r.resample.unwrap();
        assert!(used < 400, "rule must stop before the budget (used {used})");
        assert!(used >= 16 && count <= used);
        // The adaptive count is the fixed-B count truncated at `used`:
        // same seed, same tiles, only fewer of them.
        let fixed = svc.submit_mc_query("b", "main", 2, used, 7).unwrap();
        let rf = svc.wait_result(fixed).unwrap();
        assert_eq!(rf.resample, Some((count, used)));
        assert_eq!(rf.score, r.score);
        svc.job_service()
            .shutdown(sparkscore_rdd::ShutdownMode::Drain);
    }
}
