//! Synthetic-dataset configuration, with the paper's experiment presets.

/// SNP weighting schemes for the SKAT statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightScheme {
    /// All weights 1.
    Uniform,
    /// SKAT's default `Beta(maf; a, b)` density weights — upweights rare
    /// variants (Wu et al. use a = 1, b = 25).
    BetaMaf { a: f64, b: f64 },
}

impl WeightScheme {
    /// The SKAT default `Beta(1, 25)`.
    pub fn skat_default() -> Self {
        WeightScheme::BetaMaf { a: 1.0, b: 25.0 }
    }

    /// Weight for a SNP with minor-allele frequency `maf`.
    pub fn weight(&self, maf: f64) -> f64 {
        match *self {
            WeightScheme::Uniform => 1.0,
            WeightScheme::BetaMaf { a, b } => {
                // Beta density up to the normalizing constant; SKAT uses
                // the full density, which only rescales all weights by a
                // common factor (SKAT is scale-equivariant in weights).
                let ln_norm = sparkscore_stats::special::ln_gamma(a + b)
                    - sparkscore_stats::special::ln_gamma(a)
                    - sparkscore_stats::special::ln_gamma(b);
                (ln_norm + (a - 1.0) * maf.ln() + (b - 1.0) * (1.0 - maf).ln()).exp()
            }
        }
    }
}

/// Parameters of the paper's synthetic data generator (§III).
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of patients `n` (the paper uses 1000 throughout).
    pub patients: usize,
    /// Number of SNPs `m` (10K / 100K / 1M in the experiments).
    pub snps: usize,
    /// Number of SNP-sets `K` (100 or 1000 in the experiments).
    pub snp_sets: usize,
    /// Mean survival time in months (paper: exponential with mean 12).
    pub mean_survival: f64,
    /// Probability a patient's time is an event rather than censoring
    /// (paper: Bernoulli(0.85)).
    pub event_rate: f64,
    /// Relative allelic frequency range; each SNP's ρ_j is uniform in it.
    pub maf_range: (f64, f64),
    /// SNP weighting scheme.
    pub weights: WeightScheme,
    /// RNG seed — everything downstream is deterministic in it.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Sensible small default for tests and examples.
    pub fn small(seed: u64) -> Self {
        SyntheticConfig {
            patients: 50,
            snps: 200,
            snp_sets: 10,
            ..Self::paper_defaults(seed)
        }
    }

    fn paper_defaults(seed: u64) -> Self {
        SyntheticConfig {
            patients: 1000,
            snps: 100_000,
            snp_sets: 1000,
            mean_survival: 12.0,
            event_rate: 0.85,
            maf_range: (0.05, 0.5),
            weights: WeightScheme::Uniform,
            seed,
        }
    }

    /// Experiment A (Table II): 1000 patients × 100K SNPs × 1000 sets.
    pub fn experiment_a(seed: u64) -> Self {
        Self::paper_defaults(seed)
    }

    /// Experiment B, small input (Table IV row 1): 10K SNPs.
    pub fn experiment_b_10k(seed: u64) -> Self {
        SyntheticConfig {
            snps: 10_000,
            ..Self::paper_defaults(seed)
        }
    }

    /// Experiments B (row 2) / C (Table VI): 1M SNPs, 1000 sets.
    pub fn experiment_b_1m(seed: u64) -> Self {
        SyntheticConfig {
            snps: 1_000_000,
            ..Self::paper_defaults(seed)
        }
    }

    /// Uniformly scale the workload down by `factor` (patients kept,
    /// SNPs and sets divided), for laptop-scale reproduction runs.
    pub fn scaled_down(&self, factor: usize) -> Self {
        assert!(factor >= 1);
        SyntheticConfig {
            snps: (self.snps / factor).max(1),
            snp_sets: (self.snp_sets / factor).max(1),
            ..self.clone()
        }
    }

    /// Average SNPs per set, `m / K` (the exponential's mean in §III).
    pub fn mean_set_size(&self) -> f64 {
        self.snps as f64 / self.snp_sets as f64
    }

    pub fn validate(&self) {
        assert!(self.patients > 0, "need at least one patient");
        assert!(self.snps > 0, "need at least one SNP");
        assert!(
            self.snp_sets > 0 && self.snp_sets <= self.snps,
            "need 1..=snps SNP-sets"
        );
        assert!(self.mean_survival > 0.0);
        assert!((0.0..=1.0).contains(&self.event_rate));
        let (lo, hi) = self.maf_range;
        assert!(0.0 < lo && lo <= hi && hi < 1.0, "bad MAF range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_tables() {
        let a = SyntheticConfig::experiment_a(1);
        assert_eq!((a.patients, a.snps, a.snp_sets), (1000, 100_000, 1000));
        assert_eq!(a.mean_survival, 12.0);
        assert_eq!(a.event_rate, 0.85);
        assert_eq!(a.mean_set_size(), 100.0); // Table II: ~100 SNPs/set

        let b1 = SyntheticConfig::experiment_b_10k(1);
        assert_eq!(b1.snps, 10_000);
        let b2 = SyntheticConfig::experiment_b_1m(1);
        assert_eq!(b2.snps, 1_000_000);
        assert_eq!(b2.mean_set_size(), 1000.0); // Table IV: ~1000 SNPs/set
    }

    #[test]
    fn scaled_down_divides_snps_and_sets() {
        let c = SyntheticConfig::experiment_a(1).scaled_down(100);
        assert_eq!(c.snps, 1000);
        assert_eq!(c.snp_sets, 10);
        assert_eq!(c.patients, 1000, "patients unchanged");
    }

    #[test]
    fn validate_accepts_presets() {
        SyntheticConfig::small(0).validate();
        SyntheticConfig::experiment_a(0).validate();
    }

    #[test]
    #[should_panic(expected = "bad MAF range")]
    fn validate_rejects_bad_maf() {
        let mut c = SyntheticConfig::small(0);
        c.maf_range = (0.0, 0.5);
        c.validate();
    }

    #[test]
    fn uniform_weights_are_one() {
        assert_eq!(WeightScheme::Uniform.weight(0.1), 1.0);
    }

    #[test]
    fn beta_weights_favor_rare_variants() {
        let w = WeightScheme::skat_default();
        assert!(w.weight(0.01) > w.weight(0.1));
        assert!(w.weight(0.1) > w.weight(0.4));
        assert!(w.weight(0.4) > 0.0);
    }
}
