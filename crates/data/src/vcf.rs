//! A minimal VCF (Variant Call Format) reader/writer.
//!
//! The paper's abstract: SparkScore "can be readily extended to analysis
//! of DNA and RNA sequencing data" — whose interchange format is VCF.
//! This module supports the subset needed to drive an analysis: `##`
//! meta lines, the `#CHROM` header naming the samples, and records whose
//! per-sample field starts with a diploid `GT` genotype (`0/0`, `0|1`,
//! `./.` …). Genotypes become minor-allele dosage vectors, positions
//! become [`crate::regions::SnpLocus`] coordinates for gene-based SNP-set
//! construction.

use crate::packed::GenotypeBlock;
use crate::regions::SnpLocus;
use crate::synth::SnpRow;
use sparkscore_stats::score::MISSING_DOSAGE;

/// One parsed VCF variant record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcfRecord {
    pub chromosome: u8,
    pub position: u64,
    pub id: String,
    pub reference: String,
    pub alternate: String,
    /// Dosages 0/1/2 per sample; `None` for missing calls (`./.`).
    pub dosages: Vec<Option<u8>>,
}

/// A parsed VCF: sample names and variant records in file order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcfData {
    pub samples: Vec<String>,
    pub records: Vec<VcfRecord>,
}

/// Parse failures, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcfError {
    MissingHeader,
    MalformedHeader { line: usize },
    MalformedRecord { line: usize, reason: String },
}

impl std::fmt::Display for VcfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VcfError::MissingHeader => write!(f, "no #CHROM header line"),
            VcfError::MalformedHeader { line } => write!(f, "malformed header at line {line}"),
            VcfError::MalformedRecord { line, reason } => {
                write!(f, "malformed record at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for VcfError {}

const FIXED_COLUMNS: usize = 9; // CHROM POS ID REF ALT QUAL FILTER INFO FORMAT

/// Parse VCF text.
pub fn parse_vcf(text: &str) -> Result<VcfData, VcfError> {
    let mut samples: Option<Vec<String>> = None;
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.starts_with("##") || line.trim().is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("#CHROM") {
            let cols: Vec<&str> = header.split_whitespace().collect();
            // POS ID REF ALT QUAL FILTER INFO FORMAT then samples.
            if cols.len() < FIXED_COLUMNS - 1 {
                return Err(VcfError::MalformedHeader { line: lineno });
            }
            samples = Some(
                cols[FIXED_COLUMNS - 1..]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            );
            continue;
        }
        let Some(samples) = &samples else {
            return Err(VcfError::MissingHeader);
        };
        records.push(parse_record(line, lineno, samples.len())?);
    }
    match samples {
        Some(samples) => Ok(VcfData { samples, records }),
        None => Err(VcfError::MissingHeader),
    }
}

fn parse_record(line: &str, lineno: usize, num_samples: usize) -> Result<VcfRecord, VcfError> {
    let bad = |reason: &str| VcfError::MalformedRecord {
        line: lineno,
        reason: reason.to_string(),
    };
    let cols: Vec<&str> = line.split('\t').collect();
    if cols.len() != FIXED_COLUMNS + num_samples {
        return Err(bad(&format!(
            "expected {} columns, found {}",
            FIXED_COLUMNS + num_samples,
            cols.len()
        )));
    }
    let chromosome = cols[0]
        .trim_start_matches("chr")
        .parse::<u8>()
        .map_err(|_| bad("non-numeric chromosome"))?;
    let position = cols[1]
        .parse::<u64>()
        .map_err(|_| bad("non-numeric position"))?;
    // FORMAT must lead with GT for us to read genotypes.
    if cols[8] != "GT" && !cols[8].starts_with("GT:") {
        return Err(bad("FORMAT does not start with GT"));
    }
    let mut dosages = Vec::with_capacity(num_samples);
    for sample in &cols[FIXED_COLUMNS..] {
        let gt = sample.split(':').next().unwrap_or("");
        dosages.push(parse_gt(gt).ok_or_else(|| bad(&format!("bad GT field {gt:?}")))?);
    }
    Ok(VcfRecord {
        chromosome,
        position,
        id: cols[2].to_string(),
        reference: cols[3].to_string(),
        alternate: cols[4].to_string(),
        dosages,
    })
}

/// `0/1`, `1|1`, `./.` → dosage; other allele numbers are rejected
/// (multi-allelic sites are out of scope for the dosage model).
fn parse_gt(gt: &str) -> Option<Option<u8>> {
    let (a, b) = gt.split_once(['/', '|'])?;
    match (a, b) {
        (".", ".") => Some(None),
        _ => {
            let a: u8 = a.parse().ok()?;
            let b: u8 = b.parse().ok()?;
            if a > 1 || b > 1 {
                return None;
            }
            Some(Some(a + b))
        }
    }
}

/// Convert parsed records into the analysis inputs: dosage rows (missing
/// calls imputed to the record's most common dosage — simple mode
/// imputation) and positional loci. Row index == SNP id == locus index.
pub fn to_analysis_inputs(vcf: &VcfData) -> (Vec<SnpRow>, Vec<SnpLocus>) {
    let mut rows = Vec::with_capacity(vcf.records.len());
    let mut loci = Vec::with_capacity(vcf.records.len());
    for (index, rec) in vcf.records.iter().enumerate() {
        let mut counts = [0usize; 3];
        for d in rec.dosages.iter().flatten() {
            counts[*d as usize] += 1;
        }
        // Smallest dosage wins ties (the reference genotype).
        let mut mode = 0u8;
        for d in 1..3u8 {
            if counts[d as usize] > counts[mode as usize] {
                mode = d;
            }
        }
        let dosages: Vec<u8> = rec.dosages.iter().map(|d| d.unwrap_or(mode)).collect();
        rows.push(SnpRow {
            id: index as u64,
            dosages,
        });
        loci.push(SnpLocus {
            index,
            chromosome: rec.chromosome,
            position: rec.position,
        });
    }
    (rows, loci)
}

fn push_header(out: &mut String, samples: &[String]) {
    out.push_str("##fileformat=VCFv4.2\n##source=sparkscore-rs\n");
    out.push_str("#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT");
    for s in samples {
        out.push('\t');
        out.push_str(s);
    }
    out.push('\n');
}

fn push_record(out: &mut String, id: u64, dosages: &[u8], locus: &SnpLocus) {
    out.push_str(&format!(
        "{}\t{}\tsnp{}\tA\tG\t.\tPASS\t.\tGT",
        locus.chromosome, locus.position, id
    ));
    for &d in dosages {
        out.push_str(match d {
            0 => "\t0/0",
            1 => "\t0/1",
            2 => "\t1/1",
            MISSING_DOSAGE => "\t./.",
            other => panic!("invalid dosage {other}"),
        });
    }
    out.push('\n');
}

/// Serialize rows and loci back to VCF text (round-trip support and a
/// convenient way to fabricate test fixtures).
pub fn write_vcf(samples: &[String], rows: &[SnpRow], loci: &[SnpLocus]) -> String {
    assert_eq!(rows.len(), loci.len(), "rows and loci must align");
    let mut out = String::new();
    push_header(&mut out, samples);
    for (row, locus) in rows.iter().zip(loci) {
        assert_eq!(row.dosages.len(), samples.len(), "sample count mismatch");
        push_record(&mut out, row.id, &row.dosages, locus);
    }
    out
}

/// Serialize a packed [`GenotypeBlock`] straight to VCF text. Rows are
/// unpacked through one reused buffer ([`GenotypeBlock::for_each_row`] —
/// no per-row allocation); missing calls become `./.`.
pub fn write_vcf_block(samples: &[String], block: &GenotypeBlock, loci: &[SnpLocus]) -> String {
    assert_eq!(block.num_snps(), loci.len(), "rows and loci must align");
    assert_eq!(block.num_patients(), samples.len(), "sample count mismatch");
    let mut out = String::new();
    push_header(&mut out, samples);
    let mut buf = vec![0u8; block.num_patients()];
    let mut loci = loci.iter();
    block.for_each_row(&mut buf, |id, dosages| {
        push_record(&mut out, id, dosages, loci.next().expect("loci align"));
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_VCF: &str = "\
##fileformat=VCFv4.2
##reference=GRCh37
#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tP1\tP2\tP3
1\t101\trs1\tA\tG\t50\tPASS\t.\tGT\t0/0\t0/1\t1/1
1\t250\trs2\tC\tT\t99\tPASS\t.\tGT:DP\t0|1:12\t./.:0\t0/0:7
2\t77\trs3\tG\tA\t10\tPASS\t.\tGT\t1/1\t1/1\t0/1
";

    #[test]
    fn parses_samples_and_records() {
        let vcf = parse_vcf(SAMPLE_VCF).unwrap();
        assert_eq!(vcf.samples, vec!["P1", "P2", "P3"]);
        assert_eq!(vcf.records.len(), 3);
        let r = &vcf.records[0];
        assert_eq!((r.chromosome, r.position), (1, 101));
        assert_eq!(r.id, "rs1");
        assert_eq!(r.dosages, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn phased_extra_format_and_missing_calls() {
        let vcf = parse_vcf(SAMPLE_VCF).unwrap();
        let r = &vcf.records[1];
        assert_eq!(r.dosages, vec![Some(1), None, Some(0)]);
    }

    #[test]
    fn chr_prefix_accepted() {
        let text = SAMPLE_VCF.replace("\n1\t", "\nchr1\t");
        let vcf = parse_vcf(&text).unwrap();
        assert_eq!(vcf.records[0].chromosome, 1);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(
            parse_vcf("1\t100\trs\tA\tG\t.\t.\t.\tGT\t0/0\n").unwrap_err(),
            VcfError::MissingHeader
        );
    }

    #[test]
    fn wrong_column_count_rejected() {
        let text = "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tP1\n\
                    1\t100\trs\tA\tG\t.\t.\t.\tGT\t0/0\t0/1\n";
        assert!(matches!(
            parse_vcf(text).unwrap_err(),
            VcfError::MalformedRecord { line: 2, .. }
        ));
    }

    #[test]
    fn multiallelic_gt_rejected() {
        let text = "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tP1\n\
                    1\t100\trs\tA\tG\t.\t.\t.\tGT\t0/2\n";
        assert!(matches!(
            parse_vcf(text).unwrap_err(),
            VcfError::MalformedRecord { .. }
        ));
    }

    #[test]
    fn analysis_inputs_impute_missing_to_mode() {
        let vcf = parse_vcf(SAMPLE_VCF).unwrap();
        let (rows, loci) = to_analysis_inputs(&vcf);
        assert_eq!(rows.len(), 3);
        // Record 2's missing P2 call: dosage counts {0: 1, 1: 1} → mode 0.
        assert_eq!(rows[1].dosages, vec![1, 0, 0]);
        assert_eq!(loci[2].chromosome, 2);
        assert_eq!(loci[2].position, 77);
        assert_eq!(loci[1].index, 1);
    }

    #[test]
    fn write_parse_round_trip() {
        let samples: Vec<String> = vec!["a".into(), "b".into()];
        let rows = vec![
            SnpRow {
                id: 0,
                dosages: vec![0, 2],
            },
            SnpRow {
                id: 1,
                dosages: vec![1, 1],
            },
        ];
        let loci = vec![
            SnpLocus {
                index: 0,
                chromosome: 3,
                position: 500,
            },
            SnpLocus {
                index: 1,
                chromosome: 3,
                position: 900,
            },
        ];
        let text = write_vcf(&samples, &rows, &loci);
        let parsed = parse_vcf(&text).unwrap();
        assert_eq!(parsed.samples, samples);
        let (rows2, loci2) = to_analysis_inputs(&parsed);
        assert_eq!(rows2, rows);
        assert_eq!(loci2, loci);

        // The packed-block export produces byte-identical VCF text.
        let block_rows: Vec<(u64, Vec<u8>)> =
            rows.iter().map(|r| (r.id, r.dosages.clone())).collect();
        let block = GenotypeBlock::from_rows(samples.len(), &block_rows);
        assert_eq!(write_vcf_block(&samples, &block, &loci), text);
    }

    #[test]
    fn block_export_writes_missing_calls() {
        let samples: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let block = GenotypeBlock::from_rows(3, &[(7, vec![1, MISSING_DOSAGE, 2])]);
        let loci = vec![SnpLocus {
            index: 0,
            chromosome: 1,
            position: 42,
        }];
        let text = write_vcf_block(&samples, &block, &loci);
        assert!(text.contains("\t0/1\t./.\t1/1\n"), "{text}");
        // Missing calls survive a parse round-trip as None.
        let parsed = parse_vcf(&text).unwrap();
        assert_eq!(parsed.records[0].dosages, vec![Some(1), None, Some(2)]);
    }
}
