//! The paper's synthetic GWAS generator (§III), reimplemented faithfully:
//!
//! * survival time per patient ~ Exponential(1/12) (mean 12 months);
//! * event indicator ~ Bernoulli(0.85), applied independently of the time
//!   ("the event indicator is applied arbitrarily");
//! * genotype per SNP/patient ~ Binomial(2, ρ_j), SNPs independent
//!   ("in reality certain pairs of SNPs would be highly correlated … but
//!   here they are generated independently");
//! * SNP-set sizes ~ Exponential(mean m/K), rounded down, clamped to ≥ 1,
//!   and the final set augmented with every SNP not picked by sets
//!   1..K−1 so all simulated SNPs contribute to the measured runtimes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sparkscore_stats::dist::{sample_bernoulli, sample_exponential, sample_genotype};
use sparkscore_stats::score::Survival;
use sparkscore_stats::skat::SnpSet;

use crate::config::SyntheticConfig;

/// One SNP's row of the genotype matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnpRow {
    /// Dense SNP index (the paper indexes SNPs 1..J; we use 0-based ids).
    pub id: u64,
    /// Dosages 0/1/2, one per patient.
    pub dosages: Vec<u8>,
}

/// A complete synthetic cohort.
#[derive(Debug, Clone)]
pub struct GwasDataset {
    pub config: SyntheticConfig,
    /// `(Y_i, Δ_i)` per patient.
    pub phenotypes: Vec<Survival>,
    /// Genotype matrix, one row per SNP (row index == SNP id).
    pub genotypes: Vec<SnpRow>,
    /// SKAT weight ω_j per SNP.
    pub weights: Vec<f64>,
    /// The K SNP-sets; their union covers all SNPs.
    pub sets: Vec<SnpSet>,
}

impl GwasDataset {
    /// Generate a dataset; fully deterministic in `config.seed`.
    pub fn generate(config: &SyntheticConfig) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let phenotypes = generate_phenotypes(config, &mut rng);
        let (genotypes, weights) = generate_genotypes(config, &mut rng);
        let sets = generate_sets(config, &mut rng);
        GwasDataset {
            config: config.clone(),
            phenotypes,
            genotypes,
            weights,
            sets,
        }
    }

    /// Genotype rows as plain vectors (the layout the reference sequential
    /// implementations in `sparkscore-stats` consume).
    pub fn genotype_rows(&self) -> Vec<Vec<u8>> {
        self.genotypes.iter().map(|r| r.dosages.clone()).collect()
    }

    /// Plant a survival association at SNP `snp`: patients carrying more
    /// copies of the allele die earlier by `hazard_factor` per copy.
    /// Used by examples/tests to verify detection power end-to-end.
    pub fn plant_survival_signal(&mut self, snp: usize, hazard_factor: f64) {
        assert!(hazard_factor > 0.0);
        let row = &self.genotypes[snp];
        for (i, &dose) in row.dosages.iter().enumerate() {
            // Scaling an exponential time by 1/h multiplies the hazard by h.
            let h = hazard_factor.powi(i32::from(dose));
            self.phenotypes[i].time /= h;
        }
    }
}

fn generate_phenotypes(config: &SyntheticConfig, rng: &mut StdRng) -> Vec<Survival> {
    (0..config.patients)
        .map(|_| Survival {
            time: sample_exponential(rng, 1.0 / config.mean_survival),
            event: sample_bernoulli(rng, config.event_rate),
        })
        .collect()
}

fn generate_genotypes(config: &SyntheticConfig, rng: &mut StdRng) -> (Vec<SnpRow>, Vec<f64>) {
    let (lo, hi) = config.maf_range;
    let mut rows = Vec::with_capacity(config.snps);
    let mut weights = Vec::with_capacity(config.snps);
    for id in 0..config.snps {
        let rho = if lo == hi { lo } else { rng.gen_range(lo..hi) };
        let dosages = (0..config.patients)
            .map(|_| sample_genotype(rng, rho))
            .collect();
        rows.push(SnpRow {
            id: id as u64,
            dosages,
        });
        weights.push(config.weights.weight(rho));
    }
    (rows, weights)
}

fn generate_sets(config: &SyntheticConfig, rng: &mut StdRng) -> Vec<SnpSet> {
    let m = config.snps;
    let k = config.snp_sets;
    let mean_size = config.mean_set_size();
    // Deal member SNPs from a shuffled deck so sets are disjoint and
    // "composed arbitrarily from all simulated SNPs".
    let mut deck: Vec<usize> = (0..m).collect();
    deck.shuffle(rng);
    let mut cursor = 0usize;
    let mut sets = Vec::with_capacity(k);
    for set_id in 0..k.saturating_sub(1) {
        // Size ~ floor(Exponential(mean m/K)), clamped to >= 1.
        let size = (sample_exponential(rng, 1.0 / mean_size).floor() as usize).max(1);
        let available = m - cursor;
        // Keep one SNP in reserve per remaining set (incl. the last), so
        // every set stays non-empty.
        let remaining_sets = k - set_id - 1;
        let take = size
            .min(available.saturating_sub(remaining_sets))
            .max(usize::from(available > remaining_sets));
        let members: Vec<usize> = deck[cursor..cursor + take].to_vec();
        cursor += take;
        sets.push(SnpSet::new(set_id as u64, members));
    }
    // "The SNP-set K is augmented by the SNPs not picked by SNP-sets 1
    // through K−1": the final set takes the whole rest of the deck.
    let members: Vec<usize> = deck[cursor..].to_vec();
    sets.push(SnpSet::new((k - 1) as u64, members));
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SyntheticConfig;
    use proptest::prelude::*;

    fn small(seed: u64) -> GwasDataset {
        GwasDataset::generate(&SyntheticConfig::small(seed))
    }

    #[test]
    fn shapes_match_config() {
        let ds = small(1);
        assert_eq!(ds.phenotypes.len(), 50);
        assert_eq!(ds.genotypes.len(), 200);
        assert_eq!(ds.weights.len(), 200);
        assert_eq!(ds.sets.len(), 10);
        for (i, row) in ds.genotypes.iter().enumerate() {
            assert_eq!(row.id, i as u64);
            assert_eq!(row.dosages.len(), 50);
            assert!(row.dosages.iter().all(|&d| d <= 2));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small(42);
        let b = small(42);
        assert_eq!(a.genotypes, b.genotypes);
        assert_eq!(a.phenotypes, b.phenotypes);
        assert_eq!(a.sets, b.sets);
        let c = small(43);
        assert_ne!(a.genotypes, c.genotypes);
    }

    #[test]
    fn sets_partition_all_snps() {
        let ds = small(7);
        let mut seen = [false; 200];
        for set in &ds.sets {
            assert!(!set.members.is_empty());
            for &j in &set.members {
                assert!(!seen[j], "SNP {j} appears in two sets");
                seen[j] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every SNP must be in some set");
    }

    #[test]
    fn phenotype_marginals_match_paper_parameters() {
        let cfg = SyntheticConfig {
            patients: 40_000,
            snps: 1,
            snp_sets: 1,
            ..SyntheticConfig::small(3)
        };
        let ds = GwasDataset::generate(&cfg);
        let mean_t = ds.phenotypes.iter().map(|p| p.time).sum::<f64>() / 40_000.0;
        let event_rate = ds.phenotypes.iter().filter(|p| p.event).count() as f64 / 40_000.0;
        assert!((mean_t - 12.0).abs() < 0.3, "mean survival {mean_t}");
        assert!((event_rate - 0.85).abs() < 0.01, "event rate {event_rate}");
    }

    #[test]
    fn set_sizes_average_near_m_over_k() {
        let cfg = SyntheticConfig {
            patients: 2,
            snps: 20_000,
            snp_sets: 200,
            ..SyntheticConfig::small(5)
        };
        let ds = GwasDataset::generate(&cfg);
        let mean = ds.sets.iter().map(|s| s.len()).sum::<usize>() as f64 / 200.0;
        // The partition property forces the overall mean to exactly m/K;
        // check the non-final sets' sizes look exponential-ish too.
        assert_eq!(mean, 100.0);
        let non_final_mean = ds.sets[..199].iter().map(|s| s.len()).sum::<usize>() as f64 / 199.0;
        assert!(
            (non_final_mean - 100.0).abs() < 25.0,
            "non-final mean set size {non_final_mean}"
        );
    }

    #[test]
    fn planted_signal_shortens_carrier_survival() {
        let mut ds = small(11);
        let before: Vec<f64> = ds.phenotypes.iter().map(|p| p.time).collect();
        ds.plant_survival_signal(0, 3.0);
        for (i, &dose) in ds.genotypes[0].dosages.iter().enumerate() {
            let expected = before[i] / 3.0f64.powi(i32::from(dose));
            assert!((ds.phenotypes[i].time - expected).abs() < 1e-12);
        }
    }

    proptest! {
        /// Sets always partition the SNPs, for any shape.
        #[test]
        fn prop_sets_partition(snps in 1usize..300, sets in 1usize..40, seed in any::<u64>()) {
            let sets = sets.min(snps);
            let cfg = SyntheticConfig {
                patients: 3,
                snps,
                snp_sets: sets,
                ..SyntheticConfig::small(seed)
            };
            let ds = GwasDataset::generate(&cfg);
            prop_assert_eq!(ds.sets.len(), sets);
            let mut all: Vec<usize> = ds.sets.iter().flat_map(|s| s.members.clone()).collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..snps).collect::<Vec<_>>());
        }
    }
}
