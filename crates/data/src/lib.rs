//! Synthetic GWAS data and input-file handling for the SparkScore
//! reproduction.
//!
//! Replaces the paper's R data-generation scripts (§III): exponential
//! survival times, Bernoulli event indicators, Binomial(2, ρ) genotypes,
//! exponential SNP-set sizes with leftover augmentation — plus the
//! line-oriented text formats the distributed pipeline ingests from the
//! DFS and the parsers its map tasks use.

pub mod config;
pub mod io;
pub mod packed;
pub mod regions;
pub mod synth;
pub mod vcf;

pub use config::{SyntheticConfig, WeightScheme};
pub use io::{write_dataset_to_dfs, DatasetPaths};
pub use packed::GenotypeBlock;
pub use regions::{snp_sets_from_genes, GeneRegion, SnpLocus};
pub use synth::{GwasDataset, SnpRow};
pub use vcf::{
    parse_vcf, to_analysis_inputs, write_vcf, write_vcf_block, VcfData, VcfError, VcfRecord,
};
