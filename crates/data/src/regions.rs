//! Genomic coordinates: SNP loci, gene regions, and SNP-set construction
//! by positional containment.
//!
//! The paper's §II: "A SNP is typically represented as a pair (chr, pos)
//! … A gene can be represented as a triplet (chr, start, end) … each
//! SNP-set [contains] all SNPs j whose positions lie within gene k."
//! This module implements exactly that mapping, so analyses can be driven
//! by annotation instead of the synthetic arbitrary partition.

use sparkscore_stats::skat::SnpSet;

/// A SNP locus `(chr, pos)` plus its dense index in the genotype matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnpLocus {
    pub index: usize,
    pub chromosome: u8,
    pub position: u64,
}

/// A gene region `(chr, start, end)`, inclusive on both ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneRegion {
    pub id: u64,
    pub name: String,
    pub chromosome: u8,
    pub start: u64,
    pub end: u64,
}

impl GeneRegion {
    pub fn new(id: u64, name: impl Into<String>, chromosome: u8, start: u64, end: u64) -> Self {
        assert!(start <= end, "gene region start must not exceed end");
        GeneRegion {
            id,
            name: name.into(),
            chromosome,
            start,
            end,
        }
    }

    #[inline]
    pub fn contains(&self, chromosome: u8, position: u64) -> bool {
        self.chromosome == chromosome && (self.start..=self.end).contains(&position)
    }
}

/// Build one SNP-set per gene: all loci whose position lies within the
/// gene's region. Genes that contain no SNP are dropped (SNP-sets must be
/// non-empty); overlapping genes share SNPs, matching real annotation.
/// Loci are binary-searched per chromosome, so construction is
/// O((L + G) log L) rather than O(L·G).
pub fn snp_sets_from_genes(loci: &[SnpLocus], genes: &[GeneRegion]) -> Vec<SnpSet> {
    // Sort loci by (chr, pos) once.
    let mut sorted: Vec<&SnpLocus> = loci.iter().collect();
    sorted.sort_by_key(|l| (l.chromosome, l.position));
    genes
        .iter()
        .filter_map(|gene| {
            let lo = sorted
                .partition_point(|l| (l.chromosome, l.position) < (gene.chromosome, gene.start));
            let hi = sorted
                .partition_point(|l| (l.chromosome, l.position) <= (gene.chromosome, gene.end));
            if lo == hi {
                return None;
            }
            let mut members: Vec<usize> = sorted[lo..hi].iter().map(|l| l.index).collect();
            members.sort_unstable();
            Some(SnpSet::new(gene.id, members))
        })
        .collect()
}

/// Evenly spaced loci along one chromosome — handy for tests/examples.
pub fn evenly_spaced_loci(chromosome: u8, count: usize, spacing: u64) -> Vec<SnpLocus> {
    (0..count)
        .map(|i| SnpLocus {
            index: i,
            chromosome,
            position: (i as u64 + 1) * spacing,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locus(index: usize, chr: u8, pos: u64) -> SnpLocus {
        SnpLocus {
            index,
            chromosome: chr,
            position: pos,
        }
    }

    #[test]
    fn containment_respects_chromosome_and_bounds() {
        let g = GeneRegion::new(0, "BRCA2-like", 13, 100, 200);
        assert!(g.contains(13, 100));
        assert!(g.contains(13, 200));
        assert!(g.contains(13, 150));
        assert!(!g.contains(13, 99));
        assert!(!g.contains(13, 201));
        assert!(!g.contains(12, 150));
    }

    #[test]
    #[should_panic(expected = "start must not exceed end")]
    fn inverted_region_rejected() {
        let _ = GeneRegion::new(0, "bad", 1, 10, 5);
    }

    #[test]
    fn sets_built_by_position() {
        let loci = vec![
            locus(0, 1, 50),
            locus(1, 1, 150),
            locus(2, 1, 250),
            locus(3, 2, 150), // same position, different chromosome
        ];
        let genes = vec![
            GeneRegion::new(0, "geneA", 1, 100, 300),
            GeneRegion::new(1, "geneB", 2, 100, 200),
            GeneRegion::new(2, "desert", 3, 0, 1_000_000),
        ];
        let sets = snp_sets_from_genes(&loci, &genes);
        assert_eq!(sets.len(), 2, "the empty desert gene is dropped");
        assert_eq!(sets[0].id, 0);
        assert_eq!(sets[0].members, vec![1, 2]);
        assert_eq!(sets[1].id, 1);
        assert_eq!(sets[1].members, vec![3]);
    }

    #[test]
    fn overlapping_genes_share_snps() {
        let loci = vec![locus(0, 1, 100), locus(1, 1, 120)];
        let genes = vec![
            GeneRegion::new(0, "left", 1, 90, 110),
            GeneRegion::new(1, "wide", 1, 50, 500),
        ];
        let sets = snp_sets_from_genes(&loci, &genes);
        assert_eq!(sets[0].members, vec![0]);
        assert_eq!(sets[1].members, vec![0, 1]);
    }

    #[test]
    fn unsorted_loci_are_handled() {
        let loci = vec![locus(5, 1, 300), locus(2, 1, 100), locus(9, 1, 200)];
        let genes = vec![GeneRegion::new(7, "g", 1, 100, 250)];
        let sets = snp_sets_from_genes(&loci, &genes);
        assert_eq!(sets[0].members, vec![2, 9], "indices sorted in output");
    }

    #[test]
    fn evenly_spaced_helper() {
        let loci = evenly_spaced_loci(4, 3, 1000);
        assert_eq!(loci.len(), 3);
        assert_eq!(loci[2].position, 3000);
        assert!(loci.iter().all(|l| l.chromosome == 4));
    }

    #[test]
    fn matches_naive_containment_scan() {
        // Cross-check the binary-search construction against the O(L·G)
        // definition on a deterministic pseudo-random layout.
        let loci: Vec<SnpLocus> = (0..200)
            .map(|i| locus(i, (i % 5) as u8, ((i * 37) % 1000) as u64))
            .collect();
        let genes: Vec<GeneRegion> = (0..20)
            .map(|k| {
                let start = (k * 53 % 900) as u64;
                GeneRegion::new(k as u64, format!("g{k}"), (k % 5) as u8, start, start + 120)
            })
            .collect();
        let fast = snp_sets_from_genes(&loci, &genes);
        for gene in &genes {
            let mut naive: Vec<usize> = loci
                .iter()
                .filter(|l| gene.contains(l.chromosome, l.position))
                .map(|l| l.index)
                .collect();
            naive.sort_unstable();
            let got = fast.iter().find(|s| s.id == gene.id);
            match got {
                Some(s) => assert_eq!(s.members, naive, "gene {}", gene.name),
                None => assert!(naive.is_empty(), "gene {} dropped but non-empty", gene.name),
            }
        }
    }
}
