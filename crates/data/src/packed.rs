//! Columnar 2-bit-packed genotype storage.
//!
//! A [`GenotypeBlock`] holds one partition's SNPs column-major: each SNP's
//! patient vector is a contiguous run of `ceil(n/4)` bytes, four dosages
//! per byte (PLINK-style). Codes 0/1/2 are dosages;
//! [`MISSING_DOSAGE`] (`0b11`) marks a missing call — the convention is
//! defined once, in `sparkscore_stats::score`, and shared by packer and
//! kernels.
//!
//! Byte genotypes (`Vec<u8>`, one byte per call) cost 4× the memory the
//! information content needs; since the cached `U`-contribution pipeline
//! keeps genotype partitions in the LRU block cache, that waste directly
//! evicts other partitions. The packed block's `EstimateSize` is exact, so
//! the cache budget reflects real bytes.

use sparkscore_rdd::EstimateSize;
use sparkscore_stats::score::MISSING_DOSAGE;

/// One partition of SNPs, 2-bit-packed column-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenotypeBlock {
    num_patients: usize,
    /// Bytes per SNP column: `ceil(num_patients / 4)`.
    stride: usize,
    /// SNP identifiers, one per column.
    ids: Vec<u64>,
    /// Column-major packed dosages; SNP `c` occupies
    /// `data[c * stride .. (c + 1) * stride]`, patient `i` in bits
    /// `2·(i % 4)` of byte `i / 4`.
    data: Vec<u8>,
}

impl GenotypeBlock {
    /// An empty block for a cohort of `num_patients`.
    pub fn new(num_patients: usize) -> Self {
        GenotypeBlock {
            num_patients,
            stride: num_patients.div_ceil(4),
            ids: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Pack a slice of `(snp_id, byte dosages)` rows.
    pub fn from_rows(num_patients: usize, rows: &[(u64, Vec<u8>)]) -> Self {
        let mut block = GenotypeBlock::new(num_patients);
        block.ids.reserve(rows.len());
        block.data.reserve(rows.len() * block.stride);
        for (id, dosages) in rows {
            block.push_row(*id, dosages);
        }
        block
    }

    /// Append one SNP column. Accepts dosages 0/1/2 and the
    /// [`MISSING_DOSAGE`] code; panics on anything larger (those values
    /// were previously accepted silently and scored as huge dosages).
    pub fn push_row(&mut self, id: u64, dosages: &[u8]) {
        assert_eq!(
            dosages.len(),
            self.num_patients,
            "genotype vector length mismatch"
        );
        assert!(
            dosages.iter().all(|&d| d <= MISSING_DOSAGE),
            "dosage out of range: 2-bit packing holds 0/1/2 and the missing code {MISSING_DOSAGE}"
        );
        self.ids.push(id);
        let mut chunks = dosages.chunks_exact(4);
        for quad in chunks.by_ref() {
            self.data
                .push(quad[0] | quad[1] << 2 | quad[2] << 4 | quad[3] << 6);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut byte = 0u8;
            for (i, &d) in rest.iter().enumerate() {
                byte |= d << (2 * i);
            }
            self.data.push(byte);
        }
    }

    #[inline]
    pub fn num_snps(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    pub fn num_patients(&self) -> usize {
        self.num_patients
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    #[inline]
    pub fn snp_id(&self, col: usize) -> u64 {
        self.ids[col]
    }

    #[inline]
    pub fn snp_ids(&self) -> &[u64] {
        &self.ids
    }

    /// Packed payload size in bytes (excluding ids and header).
    #[inline]
    pub fn packed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes per SNP column: `ceil(num_patients / 4)`.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The raw packed bytes of SNP column `col` — the bit-kernel facing
    /// view: `sparkscore_stats::bitkern` computes counts and affine
    /// score contributions on these words without unpacking.
    #[inline]
    pub fn column(&self, col: usize) -> &[u8] {
        &self.data[col * self.stride..(col + 1) * self.stride]
    }

    /// Dosage of patient `i` at SNP column `col` (0/1/2 or
    /// [`MISSING_DOSAGE`]).
    #[inline]
    pub fn dosage(&self, col: usize, i: usize) -> u8 {
        assert!(i < self.num_patients, "patient index out of range");
        let byte = self.data[col * self.stride + i / 4];
        (byte >> (2 * (i % 4))) & 0b11
    }

    /// Unpack SNP column `col` into `out` (length `num_patients`) — the
    /// kernel-facing path, normally fed a thread-local scratch slice.
    pub fn unpack_into(&self, col: usize, out: &mut [u8]) {
        assert_eq!(
            out.len(),
            self.num_patients,
            "output vector length mismatch"
        );
        let column = &self.data[col * self.stride..(col + 1) * self.stride];
        let mut quads = out.chunks_exact_mut(4);
        let mut bytes = column.iter();
        for quad in quads.by_ref() {
            let b = *bytes.next().expect("stride covers all full quads");
            quad[0] = b & 0b11;
            quad[1] = (b >> 2) & 0b11;
            quad[2] = (b >> 4) & 0b11;
            quad[3] = b >> 6;
        }
        let rest = quads.into_remainder();
        if !rest.is_empty() {
            let b = *bytes.next().expect("stride covers the remainder");
            for (i, o) in rest.iter_mut().enumerate() {
                *o = (b >> (2 * i)) & 0b11;
            }
        }
    }

    /// Visit every `(snp_id, unpacked dosages)` row through one
    /// caller-provided buffer of length `num_patients` — the
    /// allocation-free replacement for [`GenotypeBlock::rows`] on export
    /// and round-trip paths.
    pub fn for_each_row(&self, buf: &mut [u8], mut f: impl FnMut(u64, &[u8])) {
        assert_eq!(buf.len(), self.num_patients, "row buffer length mismatch");
        for c in 0..self.num_snps() {
            self.unpack_into(c, buf);
            f(self.ids[c], buf);
        }
    }

    /// Iterate `(snp_id, unpacked dosages)` rows — the allocating
    /// interop view (one `Vec` per row; export paths use
    /// [`GenotypeBlock::for_each_row`], kernels use
    /// [`GenotypeBlock::unpack_into`] or read [`GenotypeBlock::column`]
    /// directly).
    pub fn rows(&self) -> impl Iterator<Item = (u64, Vec<u8>)> + '_ {
        (0..self.num_snps()).map(|c| {
            let mut out = vec![0u8; self.num_patients];
            self.unpack_into(c, &mut out);
            (self.ids[c], out)
        })
    }
}

impl EstimateSize for GenotypeBlock {
    /// Exact heap footprint — the LRU cache budget pays for real packed
    /// bytes, not the 4×-inflated byte-per-call representation.
    fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.data.capacity()
            + self.ids.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(n: usize, rows: &[(u64, Vec<u8>)]) {
        let block = GenotypeBlock::from_rows(n, rows);
        assert_eq!(block.num_snps(), rows.len());
        assert_eq!(block.num_patients(), n);
        let back: Vec<(u64, Vec<u8>)> = block.rows().collect();
        assert_eq!(back, rows);
        // The non-allocating visitor sees the same rows through one
        // reused buffer.
        let mut buf = vec![0u8; n];
        let mut visited = Vec::new();
        block.for_each_row(&mut buf, |id, dosages| visited.push((id, dosages.to_vec())));
        assert_eq!(visited, rows);
        for (c, (_, dosages)) in rows.iter().enumerate() {
            assert_eq!(block.column(c).len(), block.stride());
            for (i, &d) in dosages.iter().enumerate() {
                assert_eq!(block.dosage(c, i), d, "col {c} patient {i}");
                assert_eq!((block.column(c)[i / 4] >> (2 * (i % 4))) & 0b11, d);
            }
        }
    }

    #[test]
    fn round_trips_awkward_patient_counts() {
        // 0, 1, 3, 4, 5, 64, 65: empty, sub-byte, byte-exact, byte+1.
        for n in [0usize, 1, 3, 4, 5, 64, 65] {
            let rows: Vec<(u64, Vec<u8>)> = (0..3)
                .map(|r| (r as u64 * 7, (0..n).map(|i| ((i + r) % 4) as u8).collect()))
                .collect();
            round_trip(n, &rows);
        }
    }

    #[test]
    fn empty_block_round_trips() {
        round_trip(17, &[]);
        assert!(GenotypeBlock::new(17).is_empty());
    }

    #[test]
    fn packs_four_dosages_per_byte() {
        let block = GenotypeBlock::from_rows(9, &[(1, vec![0, 1, 2, 3, 0, 1, 2, 3, 2])]);
        // 9 patients → 3 bytes per column.
        assert_eq!(block.packed_bytes(), 3);
        assert_eq!(block.dosage(0, 3), MISSING_DOSAGE);
        assert_eq!(block.dosage(0, 8), 2);
    }

    #[test]
    fn estimate_size_reflects_packed_bytes() {
        let n = 1000;
        let rows: Vec<(u64, Vec<u8>)> = (0..8).map(|r| (r, vec![1u8; n])).collect();
        let block = GenotypeBlock::from_rows(n, &rows);
        let bytes = block.estimate_bytes();
        // 8 columns × 250 packed bytes + ids + header — far below the
        // 8 × 1000 B the byte representation would charge.
        assert!(bytes >= 8 * 250, "underestimates: {bytes}");
        assert!(
            bytes < 8 * 1000 / 2,
            "packed block should be ~4x smaller: {bytes}"
        );
    }

    #[test]
    #[should_panic(expected = "dosage out of range")]
    fn rejects_unpackable_dosage() {
        GenotypeBlock::from_rows(2, &[(0, vec![0, 4])]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_ragged_rows() {
        GenotypeBlock::from_rows(3, &[(0, vec![0, 1])]);
    }

    proptest! {
        /// Pack/unpack round-trips all dosage values including the missing
        /// code, at arbitrary cohort sizes and row counts.
        #[test]
        fn prop_pack_unpack_round_trip(
            n in 0usize..130,
            raw in proptest::collection::vec(
                (any::<u64>(), proptest::collection::vec(0u8..4, 0..130)),
                0..6,
            )
        ) {
            let rows: Vec<(u64, Vec<u8>)> = raw.into_iter()
                .map(|(id, mut d)| { d.resize(n, MISSING_DOSAGE); (id, d) })
                .collect();
            let block = GenotypeBlock::from_rows(n, &rows);
            let back: Vec<(u64, Vec<u8>)> = block.rows().collect();
            prop_assert_eq!(&back, &rows);
            let mut buf = vec![0u8; n];
            let mut visited = Vec::new();
            block.for_each_row(&mut buf, |id, d| visited.push((id, d.to_vec())));
            prop_assert_eq!(visited, rows);
        }

        /// `for_each_row` rejects a wrongly sized buffer.
        #[test]
        fn prop_for_each_row_checks_buffer_length(n in 1usize..40) {
            let block = GenotypeBlock::from_rows(n, &[(0, vec![1; n])]);
            let mut short = vec![0u8; n - 1];
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                block.for_each_row(&mut short, |_, _| {});
            }));
            prop_assert!(r.is_err());
        }
    }
}
