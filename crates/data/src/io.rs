//! Text (de)serialization of GWAS inputs — the file formats Algorithm 1
//! reads from HDFS ("Genotype Matrix, Pairs of Events and Survival Times
//! per Patient, SNP Weights, SNP-Sets").
//!
//! All four inputs are line-oriented text so they split cleanly into DFS
//! blocks and parse record-by-record inside map tasks:
//!
//! * genotypes — `"<snp_id> <g_1> <g_2> … <g_n>"` (dosages 0/1/2);
//! * phenotypes — `"<patient_id> <time> <0|1>"`;
//! * weights — `"<snp_id> <weight>"`;
//! * SNP-sets — `"<set_id> <snp_id>,<snp_id>,…"`.

use sparkscore_dfs::{Dfs, DfsError, FileMeta};
use sparkscore_stats::score::Survival;
use sparkscore_stats::skat::SnpSet;

use crate::synth::{GwasDataset, SnpRow};

/// DFS paths of one serialized dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetPaths {
    pub genotypes: String,
    pub phenotypes: String,
    pub weights: String,
    pub sets: String,
}

impl DatasetPaths {
    /// Conventional layout under a prefix directory.
    pub fn under(prefix: &str) -> Self {
        let prefix = prefix.trim_end_matches('/');
        DatasetPaths {
            genotypes: format!("{prefix}/genotypes.txt"),
            phenotypes: format!("{prefix}/phenotypes.txt"),
            weights: format!("{prefix}/weights.txt"),
            sets: format!("{prefix}/snp_sets.txt"),
        }
    }
}

// ---------- line formatting ----------

pub fn format_genotype_line(row: &SnpRow) -> String {
    let mut s = String::with_capacity(8 + 2 * row.dosages.len());
    s.push_str(&row.id.to_string());
    for &d in &row.dosages {
        s.push(' ');
        s.push((b'0' + d) as char);
    }
    s
}

pub fn format_phenotype_line(patient: usize, ph: &Survival) -> String {
    format!("{patient} {:.6} {}", ph.time, u8::from(ph.event))
}

pub fn format_weight_line(snp: u64, weight: f64) -> String {
    format!("{snp} {weight:.10}")
}

pub fn format_set_line(set: &SnpSet) -> String {
    let members: Vec<String> = set.members.iter().map(|m| m.to_string()).collect();
    format!("{} {}", set.id, members.join(","))
}

// ---------- line parsing ----------

fn malformed(kind: &str, line: &str) -> ! {
    panic!("malformed {kind} line: {line:?}")
}

/// Parse `"<snp_id> <g_1> … <g_n>"`.
pub fn parse_genotype_line(line: &str) -> (u64, Vec<u8>) {
    let mut it = line.split_ascii_whitespace();
    let id = it
        .next()
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(|| malformed("genotype", line));
    let dosages: Vec<u8> = it
        .map(|t| match t {
            "0" => 0u8,
            "1" => 1,
            "2" => 2,
            _ => malformed("genotype", line),
        })
        .collect();
    if dosages.is_empty() {
        malformed("genotype", line)
    }
    (id, dosages)
}

/// Parse `"<patient_id> <time> <0|1>"`.
pub fn parse_phenotype_line(line: &str) -> (usize, Survival) {
    let mut it = line.split_ascii_whitespace();
    let (Some(pid), Some(time), Some(event), None) = (it.next(), it.next(), it.next(), it.next())
    else {
        malformed("phenotype", line)
    };
    let patient = pid.parse().unwrap_or_else(|_| malformed("phenotype", line));
    let time: f64 = time
        .parse()
        .unwrap_or_else(|_| malformed("phenotype", line));
    let event = match event {
        "0" => false,
        "1" => true,
        _ => malformed("phenotype", line),
    };
    (patient, Survival { time, event })
}

/// Parse `"<snp_id> <weight>"`.
pub fn parse_weight_line(line: &str) -> (u64, f64) {
    let mut it = line.split_ascii_whitespace();
    let (Some(id), Some(w), None) = (it.next(), it.next(), it.next()) else {
        malformed("weight", line)
    };
    (
        id.parse().unwrap_or_else(|_| malformed("weight", line)),
        w.parse().unwrap_or_else(|_| malformed("weight", line)),
    )
}

/// Parse `"<set_id> <snp>,<snp>,…"`.
pub fn parse_set_line(line: &str) -> SnpSet {
    let mut it = line.split_ascii_whitespace();
    let (Some(id), Some(members), None) = (it.next(), it.next(), it.next()) else {
        malformed("snp-set", line)
    };
    let id = id.parse().unwrap_or_else(|_| malformed("snp-set", line));
    let members: Vec<usize> = members
        .split(',')
        .map(|t| t.parse().unwrap_or_else(|_| malformed("snp-set", line)))
        .collect();
    SnpSet::new(id, members)
}

// ---------- whole-file serialization ----------

pub fn genotypes_to_text(rows: &[SnpRow]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&format_genotype_line(row));
        out.push('\n');
    }
    out
}

pub fn phenotypes_to_text(phenotypes: &[Survival]) -> String {
    let mut out = String::new();
    for (i, ph) in phenotypes.iter().enumerate() {
        out.push_str(&format_phenotype_line(i, ph));
        out.push('\n');
    }
    out
}

pub fn weights_to_text(weights: &[f64]) -> String {
    let mut out = String::new();
    for (j, &w) in weights.iter().enumerate() {
        out.push_str(&format_weight_line(j as u64, w));
        out.push('\n');
    }
    out
}

pub fn sets_to_text(sets: &[SnpSet]) -> String {
    let mut out = String::new();
    for s in sets {
        out.push_str(&format_set_line(s));
        out.push('\n');
    }
    out
}

/// Parse a whole phenotype file into patient order.
pub fn parse_phenotypes_text(text: &str) -> Vec<Survival> {
    let mut rows: Vec<(usize, Survival)> = text.lines().map(parse_phenotype_line).collect();
    rows.sort_by_key(|&(i, _)| i);
    for (expect, &(got, _)) in rows.iter().enumerate() {
        assert_eq!(expect, got, "patient ids must be dense");
    }
    rows.into_iter().map(|(_, ph)| ph).collect()
}

/// Write all four inputs of `dataset` to the DFS under `prefix`.
/// Returns the paths; fails if any file already exists.
pub fn write_dataset_to_dfs(
    dfs: &Dfs,
    prefix: &str,
    dataset: &GwasDataset,
) -> Result<(DatasetPaths, Vec<FileMeta>), DfsError> {
    let paths = DatasetPaths::under(prefix);
    let metas = vec![
        dfs.write_text(&paths.genotypes, &genotypes_to_text(&dataset.genotypes))?,
        dfs.write_text(&paths.phenotypes, &phenotypes_to_text(&dataset.phenotypes))?,
        dfs.write_text(&paths.weights, &weights_to_text(&dataset.weights))?,
        dfs.write_text(&paths.sets, &sets_to_text(&dataset.sets))?,
    ];
    Ok((paths, metas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SyntheticConfig;
    use std::sync::Arc;

    #[test]
    fn genotype_line_round_trip() {
        let row = SnpRow {
            id: 42,
            dosages: vec![0, 1, 2, 1, 0],
        };
        let line = format_genotype_line(&row);
        assert_eq!(line, "42 0 1 2 1 0");
        let (id, dosages) = parse_genotype_line(&line);
        assert_eq!(id, 42);
        assert_eq!(dosages, row.dosages);
    }

    #[test]
    fn phenotype_line_round_trip() {
        let ph = Survival::event_at(11.25);
        let line = format_phenotype_line(7, &ph);
        let (pid, parsed) = parse_phenotype_line(&line);
        assert_eq!(pid, 7);
        assert!(parsed.event);
        assert!((parsed.time - 11.25).abs() < 1e-6);
    }

    #[test]
    fn weight_line_round_trip() {
        let line = format_weight_line(3, 0.12345);
        let (id, w) = parse_weight_line(&line);
        assert_eq!(id, 3);
        assert!((w - 0.12345).abs() < 1e-9);
    }

    #[test]
    fn set_line_round_trip() {
        let set = SnpSet::new(9, vec![4, 1, 7]);
        let parsed = parse_set_line(&format_set_line(&set));
        assert_eq!(parsed, set);
    }

    #[test]
    #[should_panic(expected = "malformed genotype")]
    fn bad_dosage_rejected() {
        let _ = parse_genotype_line("1 0 3 1");
    }

    #[test]
    #[should_panic(expected = "malformed phenotype")]
    fn bad_event_flag_rejected() {
        let _ = parse_phenotype_line("0 1.5 2");
    }

    #[test]
    fn whole_dataset_round_trips_through_dfs() {
        use sparkscore_cluster::{Cluster, ClusterSpec};
        let ds = GwasDataset::generate(&SyntheticConfig::small(5));
        let cluster = Arc::new(Cluster::provision(ClusterSpec::test_small(3)));
        let dfs = Dfs::new(cluster, 2048, 2).unwrap();
        let (paths, metas) = write_dataset_to_dfs(&dfs, "/gwas", &ds).unwrap();
        assert_eq!(metas.len(), 4);

        // Genotypes.
        let text = dfs.read_to_string(&paths.genotypes).unwrap();
        let rows: Vec<(u64, Vec<u8>)> = text.lines().map(parse_genotype_line).collect();
        assert_eq!(rows.len(), ds.genotypes.len());
        for (parsed, orig) in rows.iter().zip(&ds.genotypes) {
            assert_eq!(parsed.0, orig.id);
            assert_eq!(parsed.1, orig.dosages);
        }

        // Phenotypes (order restored from patient ids).
        let ph = parse_phenotypes_text(&dfs.read_to_string(&paths.phenotypes).unwrap());
        assert_eq!(ph.len(), ds.phenotypes.len());
        for (a, b) in ph.iter().zip(&ds.phenotypes) {
            assert_eq!(a.event, b.event);
            assert!((a.time - b.time).abs() < 1e-5);
        }

        // Weights.
        let wtext = dfs.read_to_string(&paths.weights).unwrap();
        let ws: Vec<(u64, f64)> = wtext.lines().map(parse_weight_line).collect();
        assert_eq!(ws.len(), ds.weights.len());

        // Sets.
        let stext = dfs.read_to_string(&paths.sets).unwrap();
        let sets: Vec<SnpSet> = stext.lines().map(parse_set_line).collect();
        assert_eq!(sets, ds.sets);
    }

    #[test]
    fn writing_twice_fails() {
        use sparkscore_cluster::{Cluster, ClusterSpec};
        let ds = GwasDataset::generate(&SyntheticConfig::small(5));
        let cluster = Arc::new(Cluster::provision(ClusterSpec::test_small(1)));
        let dfs = Dfs::new(cluster, 2048, 1).unwrap();
        write_dataset_to_dfs(&dfs, "/gwas", &ds).unwrap();
        assert!(write_dataset_to_dfs(&dfs, "/gwas", &ds).is_err());
    }
}
