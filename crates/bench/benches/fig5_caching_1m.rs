//! Figure 5 (virtual time): caching impact on the large (1M-row class)
//! input — the gap between cached and uncached widens with input size.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparkscore_bench::paper_engine;

fn fig5(c: &mut Criterion) {
    let cfg = common::mini_config(2000, 4);
    let ctx = common::context(paper_engine(18, &cfg), &cfg);
    let mut group = c.benchmark_group("fig5_caching_1m");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(1500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &b in &[10usize, 50] {
        group.bench_with_input(BenchmarkId::new("cached", b), &b, |bench, &b| {
            bench.iter_custom(|n| common::mc_virtual(&ctx, b, true, n));
        });
        group.bench_with_input(BenchmarkId::new("no_cache", b), &b, |bench, &b| {
            bench.iter_custom(|n| common::mc_virtual(&ctx, b, false, n));
        });
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
