//! Wall-time microbenchmarks of the computational kernels (not a paper
//! figure): Cox score evaluation (risk-set-prefix vs naive), SKAT
//! combination, Monte Carlo perturbation, and the engine's shuffle.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkscore_cluster::ClusterSpec;
use sparkscore_rdd::Engine;
use sparkscore_stats::resample::mc_weights;
use sparkscore_stats::score::{cox_contributions_naive, CoxScore, ScoreModel, Survival};
use sparkscore_stats::skat::{skat_statistic, SnpSet};

fn random_cohort(n: usize, seed: u64) -> (Vec<Survival>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ph = (0..n)
        .map(|_| Survival {
            time: rng.gen_range(0.1..60.0),
            event: rng.gen_bool(0.85),
        })
        .collect();
    let g = (0..n).map(|_| rng.gen_range(0u8..3)).collect();
    (ph, g)
}

fn cox_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("cox_score");
    for &n in &[100usize, 1000] {
        let (ph, g) = random_cohort(n, 7);
        let model = CoxScore::new(&ph);
        group.bench_with_input(BenchmarkId::new("prefix_sum", n), &n, |b, _| {
            b.iter(|| model.contributions(std::hint::black_box(&g)));
        });
        group.bench_with_input(BenchmarkId::new("naive_oracle", n), &n, |b, _| {
            b.iter(|| cox_contributions_naive(std::hint::black_box(&ph), &g));
        });
    }
    group.finish();
}

fn skat_kernel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let m = 10_000;
    let scores: Vec<f64> = (0..m).map(|_| rng.gen_range(-5.0..5.0)).collect();
    let weights = vec![1.0; m];
    let set = SnpSet::new(0, (0..m).collect());
    c.bench_function("skat_10k_snps", |b| {
        b.iter(|| skat_statistic(std::hint::black_box(&scores), &weights, &set));
    });
}

fn mc_perturbation_kernel(c: &mut Criterion) {
    let (ph, _) = random_cohort(1000, 9);
    let model = CoxScore::new(&ph);
    let mut rng = StdRng::seed_from_u64(10);
    let g: Vec<u8> = (0..1000).map(|_| rng.gen_range(0u8..3)).collect();
    let contribs = model.contributions(&g);
    c.bench_function("mc_perturb_1000_patients", |b| {
        let z = mc_weights(&mut rng, 1000);
        b.iter(|| {
            let s: f64 = contribs.iter().zip(&z).map(|(u, zi)| u * zi).sum();
            std::hint::black_box(s * s)
        });
    });
}

fn engine_shuffle(c: &mut Criterion) {
    let engine = Engine::builder(ClusterSpec::test_small(2)).build();
    let pairs: Vec<(u64, u64)> = (0..20_000u64).map(|x| (x % 64, x)).collect();
    let ds = engine.parallelize(pairs, 8);
    c.bench_function("reduce_by_key_20k_records", |b| {
        b.iter(|| ds.reduce_by_key(4, |a, b| a + b).count());
    });
}

criterion_group!(
    benches,
    cox_kernels,
    skat_kernel,
    mc_perturbation_kernel,
    engine_shuffle
);
criterion_main!(benches);
