//! Figure 2 (virtual time): Monte Carlo vs permutation runtime as the
//! number of resampling iterations grows, on a 6-node cluster.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparkscore_bench::paper_engine;

fn fig2(c: &mut Criterion) {
    let cfg = common::mini_config(400, 1);
    let ctx = common::context(paper_engine(6, &cfg), &cfg);
    let mut group = c.benchmark_group("fig2_scalability");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(1500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &b in &[2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("monte_carlo", b), &b, |bench, &b| {
            bench.iter_custom(|n| common::mc_virtual(&ctx, b, true, n));
        });
        group.bench_with_input(BenchmarkId::new("permutation", b), &b, |bench, &b| {
            bench.iter_custom(|n| common::perm_virtual(&ctx, b, n));
        });
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
