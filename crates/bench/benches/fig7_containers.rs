//! Figure 7 (virtual time): runtime vs YARN container count on a fixed
//! 36-node cluster — 42/84/126 containers all provide 252 task slots, so
//! the curves should nearly coincide.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparkscore_bench::container_engine;
use sparkscore_cluster::ContainerRequest;

fn fig7(c: &mut Criterion) {
    let cfg = common::mini_config(2000, 6);
    let mut group = c.benchmark_group("fig7_containers");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(1500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for req in [
        ContainerRequest::paper_42(),
        ContainerRequest::paper_84(),
        ContainerRequest::paper_126(),
    ] {
        let ctx = common::context(container_engine(36, req, &cfg), &cfg);
        group.bench_with_input(
            BenchmarkId::new("mc_b10", req.containers),
            &req,
            |bench, _| {
                bench.iter_custom(|n| common::mc_virtual(&ctx, 10, true, n));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
