#![allow(dead_code)] // not every figure bench uses every helper
//! Shared helpers for the figure benches. Workloads are miniature versions
//! of the paper's; each bench reports *virtual cluster seconds* through
//! `iter_custom`, so Criterion's output is in the same units as the
//! paper's y-axes.

use std::sync::Arc;
use std::time::Duration;

use sparkscore_bench::virtual_duration;
use sparkscore_core::SparkScoreContext;
use sparkscore_data::SyntheticConfig;
use sparkscore_rdd::Engine;

/// A miniature workload: `snps` SNPs, 100 patients, `snps/20` sets.
pub fn mini_config(snps: usize, seed: u64) -> SyntheticConfig {
    let mut cfg = SyntheticConfig::small(seed);
    cfg.patients = 100;
    cfg.snps = snps;
    cfg.snp_sets = (snps / 20).max(1);
    cfg
}

pub fn context(engine: Arc<Engine>, cfg: &SyntheticConfig) -> SparkScoreContext {
    sparkscore_bench::context_on(engine, cfg)
}

/// Measure `n` Monte Carlo runs in virtual time.
pub fn mc_virtual(ctx: &SparkScoreContext, b: usize, cache: bool, n: u64) -> Duration {
    let mut total = Duration::ZERO;
    for i in 0..n {
        total += virtual_duration(&ctx.monte_carlo(b, 100 + i, cache));
    }
    total
}

/// Measure `n` permutation runs in virtual time.
pub fn perm_virtual(ctx: &SparkScoreContext, b: usize, n: u64) -> Duration {
    let mut total = Duration::ZERO;
    for i in 0..n {
        total += virtual_duration(&ctx.permutation(b, 200 + i));
    }
    total
}
