//! Figure 4 (virtual time): Monte Carlo with vs without RDD caching on
//! the small (10K-row class) input, as iterations grow.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparkscore_bench::paper_engine;

fn fig4(c: &mut Criterion) {
    let cfg = common::mini_config(200, 3);
    let ctx = common::context(paper_engine(18, &cfg), &cfg);
    let mut group = c.benchmark_group("fig4_caching_10k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(1500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &b in &[10usize, 50, 100] {
        group.bench_with_input(BenchmarkId::new("cached", b), &b, |bench, &b| {
            bench.iter_custom(|n| common::mc_virtual(&ctx, b, true, n));
        });
        group.bench_with_input(BenchmarkId::new("no_cache", b), &b, |bench, &b| {
            bench.iter_custom(|n| common::mc_virtual(&ctx, b, false, n));
        });
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
