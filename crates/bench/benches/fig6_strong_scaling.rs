//! Figure 6 (virtual time): strong scaling of the Monte Carlo workload
//! over 6/12/18 nodes, with node-proportional storage memory so the
//! 6-node cluster suffers the cache thrashing the paper attributes its
//! superlinear gap to.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparkscore_bench::{pressured_engine, u_rdd_bytes};

fn fig6(c: &mut Criterion) {
    let cfg = common::mini_config(2000, 5);
    let per_node = (u_rdd_bytes(&cfg) as f64 / 11.0).ceil() as u64;
    let mut group = c.benchmark_group("fig6_strong_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(1500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &nodes in &[6u32, 12, 18] {
        let ctx = common::context(
            pressured_engine(nodes, per_node * u64::from(nodes), &cfg),
            &cfg,
        );
        group.bench_with_input(BenchmarkId::new("mc_b10", nodes), &nodes, |bench, _| {
            bench.iter_custom(|n| common::mc_virtual(&ctx, 10, true, n));
        });
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
