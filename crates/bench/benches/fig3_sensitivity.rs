//! Figure 3 (virtual time): iterations × SNPs held constant — runtime
//! should be roughly invariant within each method.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparkscore_bench::paper_engine;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_sensitivity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(1500));
    group.measurement_time(std::time::Duration::from_secs(3));
    // iterations × SNPs = 8000 in each split.
    for &(iters, snps) in &[(40usize, 200usize), (20, 400), (10, 800)] {
        let cfg = common::mini_config(snps, 2);
        let ctx = common::context(paper_engine(6, &cfg), &cfg);
        let label = format!("{iters}x{snps}");
        group.bench_with_input(
            BenchmarkId::new("monte_carlo", &label),
            &iters,
            |bench, &iters| {
                bench.iter_custom(|n| common::mc_virtual(&ctx, iters, true, n));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("permutation", &label),
            &iters,
            |bench, &iters| {
                bench.iter_custom(|n| common::perm_virtual(&ctx, iters, n));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
