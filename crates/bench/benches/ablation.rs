//! Ablation benches for the design choices called out in DESIGN.md (all
//! in virtual cluster time):
//!
//! * weights delivery — the paper's shuffle **join** (Algorithm 1 step 9)
//!   vs a broadcast weight table (removes two shuffle stages/iteration);
//! * `U` RDD **caching** on vs off (the Algorithm 3 design choice);
//! * DFS **block size** — input-partition granularity vs scheduling
//!   overhead for the observed pass.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparkscore_bench::virtual_duration;
use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, SparkScoreContext, WeightsStrategy};
use sparkscore_data::{write_dataset_to_dfs, GwasDataset};
use sparkscore_rdd::Engine;

fn weights_delivery(c: &mut Criterion) {
    let cfg = common::mini_config(400, 21);
    let mut group = c.benchmark_group("ablation_weights_delivery");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(1500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, strategy) in [
        ("join_paper", WeightsStrategy::Join),
        ("broadcast", WeightsStrategy::Broadcast),
    ] {
        let engine = Engine::builder(ClusterSpec::m3_2xlarge(6))
            .dfs_block_size(32 * 1024)
            .build();
        let dataset = GwasDataset::generate(&cfg);
        let (paths, _) = write_dataset_to_dfs(engine.dfs(), "/bench", &dataset).unwrap();
        let ctx = SparkScoreContext::from_dfs(
            engine,
            &paths,
            AnalysisOptions {
                weights_strategy: strategy,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        group.bench_function(BenchmarkId::new("mc_b20", label), |bench| {
            bench.iter_custom(|n| {
                let mut total = std::time::Duration::ZERO;
                for i in 0..n {
                    total += virtual_duration(&ctx.monte_carlo(20, i, true));
                }
                total
            });
        });
    }
    group.finish();
}

fn u_rdd_caching(c: &mut Criterion) {
    let cfg = common::mini_config(400, 22);
    let engine = sparkscore_bench::paper_engine(6, &cfg);
    let ctx = common::context(engine, &cfg);
    let mut group = c.benchmark_group("ablation_u_caching");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(1500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, cache) in [("cached", true), ("uncached", false)] {
        group.bench_function(BenchmarkId::new("mc_b20", label), |bench| {
            bench.iter_custom(|n| common::mc_virtual(&ctx, 20, cache, n));
        });
    }
    group.finish();
}

fn dfs_block_size(c: &mut Criterion) {
    let cfg = common::mini_config(800, 23);
    let mut group = c.benchmark_group("ablation_dfs_block_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(1500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for block_kib in [16usize, 64, 512] {
        let engine = Engine::builder(ClusterSpec::m3_2xlarge(6))
            .dfs_block_size(block_kib * 1024)
            .build();
        let dataset = GwasDataset::generate(&cfg);
        let (paths, _) = write_dataset_to_dfs(engine.dfs(), "/bench", &dataset).unwrap();
        let ctx = SparkScoreContext::from_dfs(engine, &paths, AnalysisOptions::default()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("observed_pass", block_kib),
            &block_kib,
            |bench, _| {
                bench.iter_custom(|n| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..n {
                        let obs = ctx.observed();
                        total += std::time::Duration::from_secs_f64(obs.virtual_secs.max(1e-9));
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, weights_delivery, u_rdd_caching, dfs_block_size);
criterion_main!(benches);
