//! Sensitivity — constant total work, varying iterations × SNPs.
//!
//! Regenerates **Figure 3**: three configurations with the product
//! `iterations × SNPs` held constant (paper: 1000×10K, 100×100K, 10×1M),
//! for both Monte Carlo and permutation. The paper finds each method's
//! runtime roughly constant across the three splits, with MC far below
//! permutation throughout.
//!
//! `--scale N` divides the SNP counts (and the matching set counts) by N.

use sparkscore_bench::{
    context_on, measure_mc, measure_perm, observe, paper_engine, print_table, secs, shape_check,
    HarnessOptions, Measurement,
};
use sparkscore_data::SyntheticConfig;

fn main() {
    let opts = HarnessOptions::from_args();
    let nodes = 6;

    // (iterations, SNPs, sets) with iterations × SNPs constant.
    let configs: &[(usize, usize, usize)] = if opts.quick {
        &[(100, 10_000, 1000), (10, 100_000, 1000)]
    } else {
        &[
            (1000, 10_000, 1000),
            (100, 100_000, 1000),
            (10, 1_000_000, 1000),
        ]
    };

    println!("# Sensitivity: iterations × SNPs constant (Figure 3)");
    let mut mc_points: Vec<(String, Measurement)> = Vec::new();
    let mut perm_points: Vec<(String, Measurement)> = Vec::new();
    for &(iters, snps, sets) in configs {
        let cfg = SyntheticConfig {
            snps: (snps / opts.scale).max(1),
            snp_sets: (sets / opts.scale).max(1),
            ..SyntheticConfig::experiment_a(4)
        };
        let label = format!("{iters}×{snps}");
        eprintln!("[sensitivity] {label} (scaled to {} SNPs) ...", cfg.snps);
        let engine = paper_engine(nodes, &cfg);
        let obs = observe(&engine, &format!("sensitivity_{iters}x{snps}"));
        let ctx = context_on(engine, &cfg);
        mc_points.push((label.clone(), measure_mc(&ctx, iters, opts.runs, true)));
        // Permutation at high iteration counts is the expensive half; the
        // paper ran it anyway — so do we (scaled).
        perm_points.push((label, measure_perm(&ctx, iters, opts.runs)));
        obs.finish();
    }

    let rows: Vec<Vec<String>> = mc_points
        .iter()
        .zip(&perm_points)
        .map(|((label, mc), (_, perm))| {
            vec![
                label.clone(),
                secs(mc.virtual_secs),
                secs(perm.virtual_secs),
            ]
        })
        .collect();
    print_table(
        "Figure 3 — iterations × SNPs constant (virtual seconds)",
        &["iterations × SNPs", "Monte Carlo", "permutation"],
        &rows,
    );

    // Shape checks: MC below permutation everywhere; each method roughly
    // flat across the splits (within ~3×, as in the paper's bars).
    let mc_times: Vec<f64> = mc_points.iter().map(|(_, m)| m.virtual_secs).collect();
    let perm_times: Vec<f64> = perm_points.iter().map(|(_, m)| m.virtual_secs).collect();
    shape_check(
        "MC cheaper than permutation in every split",
        mc_times.iter().zip(&perm_times).all(|(m, p)| m < p),
    );
    let flat = |ts: &[f64]| {
        let max = ts.iter().cloned().fold(f64::MIN, f64::max);
        let min = ts.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    };
    shape_check(
        &format!(
            "permutation roughly constant across splits (max/min = {:.2})",
            flat(&perm_times)
        ),
        flat(&perm_times) < 3.0,
    );
    // MC's flatness only emerges near paper scale: its per-iteration floor
    // is fixed scheduling overhead, so the high-iteration splits dominate
    // at reduced scale. Report rather than enforce.
    println!(
        "info: MC spread across splits (max/min) = {:.2} (flat at full scale)",
        flat(&mc_times)
    );

    let json = serde_json::json!({
        "experiment": "sensitivity",
        "scale": opts.scale,
        "points": mc_points.iter().zip(&perm_points).map(|((label, mc), (_, perm))| {
            serde_json::json!({
                "config": label,
                "mc_virtual_secs": mc.virtual_secs,
                "perm_virtual_secs": perm.virtual_secs,
            })
        }).collect::<Vec<_>>(),
    });
    println!("\nJSON: {json}");
}
