//! Experiment A — scalability of Monte Carlo vs permutation resampling.
//!
//! Regenerates: **Table II** (inputs), **Figure 2** (runtime vs iteration
//! count for both methods on 6 nodes), and **Table III** (means and
//! standard deviations over repeated runs).
//!
//! Paper workload: 1000 patients × 100 000 SNPs × 1000 SNP-sets on
//! 6 × m3.2xlarge. `--scale N` divides SNPs/sets by N (default 100);
//! `--paper-scale` runs the full size; `--runs 5` reproduces Table III's
//! averaging.

use sparkscore_bench::{
    context_on, measure_mc, measure_perm, observe, paper, paper_engine, print_table, secs,
    shape_check, HarnessOptions, Measurement,
};
use sparkscore_data::SyntheticConfig;

fn main() {
    let opts = HarnessOptions::from_args();
    let cfg = SyntheticConfig::experiment_a(1).scaled_down(opts.scale);
    let nodes = 6;

    println!("# Experiment A: Monte Carlo vs permutation scalability");
    print_table(
        "Table I — instance type",
        &["name", "vCPU", "mem (GiB)", "storage (GB)"],
        &[vec![
            sparkscore_cluster::M3_2XLARGE.name.to_string(),
            sparkscore_cluster::M3_2XLARGE.vcpus.to_string(),
            (sparkscore_cluster::M3_2XLARGE.memory_mib / 1024).to_string(),
            sparkscore_cluster::M3_2XLARGE.storage_gb.to_string(),
        ]],
    );
    print_table(
        "Table II — input parameters",
        &[
            "patients",
            "SNPs",
            "SNP-sets",
            "avg SNPs/set",
            "nodes",
            "scale",
        ],
        &[vec![
            cfg.patients.to_string(),
            cfg.snps.to_string(),
            cfg.snp_sets.to_string(),
            format!("{:.0}", cfg.mean_set_size()),
            nodes.to_string(),
            format!("1/{}", opts.scale),
        ]],
    );

    let engine = paper_engine(nodes, &cfg);
    let obs = observe(&engine, "experiment_a");
    let ctx = context_on(engine, &cfg);

    let mc_iters: Vec<usize> = if opts.quick {
        vec![0, 2, 4, 8, 16, 100]
    } else {
        vec![0, 2, 4, 8, 16, 100, 1000, 10000]
    };
    let perm_iters: Vec<usize> = if opts.quick {
        vec![0, 2, 4]
    } else {
        vec![0, 2, 4, 8, 16]
    };

    let mc: Vec<Measurement> = mc_iters
        .iter()
        .map(|&b| {
            eprintln!("[mc] B = {b} ...");
            measure_mc(&ctx, b, opts.runs, true)
        })
        .collect();
    let perm: Vec<Measurement> = perm_iters
        .iter()
        .map(|&b| {
            eprintln!("[perm] B = {b} ...");
            measure_perm(&ctx, b, opts.runs)
        })
        .collect();

    // Figure 2 / Table III.
    let all_iters: std::collections::BTreeSet<usize> =
        mc_iters.iter().chain(&perm_iters).copied().collect();
    let mut rows = Vec::new();
    for &b in &all_iters {
        let fmt = |m: Option<&Measurement>| match m {
            Some(m) => format!("{} ± {}", secs(m.virtual_secs), secs(m.virtual_std)),
            None => "N/A".into(),
        };
        let paper_fmt = |v: Option<f64>| v.map_or("N/A".into(), secs);
        rows.push(vec![
            b.to_string(),
            fmt(mc.iter().find(|m| m.iterations == b)),
            fmt(perm.iter().find(|m| m.iterations == b)),
            paper_fmt(paper::lookup(
                &paper::TABLE_III_ITERS,
                &paper::TABLE_III_MC,
                b,
            )),
            paper_fmt(paper::lookup(
                &paper::TABLE_III_ITERS[..5],
                &paper::TABLE_III_PERM,
                b,
            )),
        ]);
    }
    print_table(
        "Figure 2 / Table III — runtime vs iterations (virtual cluster seconds)",
        &[
            "iterations",
            "MC (measured)",
            "permutation (measured)",
            "MC (paper)",
            "permutation (paper)",
        ],
        &rows,
    );

    // Shape checks against the paper's qualitative claims.
    let get = |ms: &[Measurement], b: usize| {
        ms.iter()
            .find(|m| m.iterations == b)
            .map(|m| m.virtual_secs)
    };
    // Per-iteration costs from the largest common spans.
    let per_iter = |ms: &[Measurement]| -> Option<f64> {
        let base = get(ms, 0)?;
        ms.iter()
            .rfind(|m| m.iterations > 0)
            .map(|m| (m.virtual_secs - base) / m.iterations as f64)
    };
    if let (Some(mc_iter), Some(perm_iter)) = (per_iter(&mc), per_iter(&perm)) {
        shape_check(
            &format!(
                "MC per-iteration cost ({:.3}s) an order of magnitude below \
                 permutation's ({:.3}s)",
                mc_iter, perm_iter
            ),
            perm_iter / mc_iter >= 8.0,
        );
        // The paper's deepest claim: MC at 10 000 iterations under
        // permutation at 16 (ratio ≈ 800× per iteration on their stack).
        // The per-iteration ratio shrinks with --scale because MC's
        // per-iteration floor is fixed scheduling overhead while
        // permutation's cost scales with the data; report the implied
        // crossover instead of hard-failing at reduced scale.
        let crossover = 16.0 * perm_iter / mc_iter;
        println!(
            "info: MC remains cheaper than permutation@16 up to ~{crossover:.0} \
             iterations (paper: >10000 at full scale)"
        );
        if opts.scale <= 2 {
            shape_check(
                "full scale: MC at 10000 iterations cheaper than permutation at 16",
                crossover >= 10_000.0,
            );
        }
    }
    if let (Some(p2), Some(p16)) = (get(&perm, 2), get(&perm, 16)) {
        shape_check(
            "permutation cost grows roughly linearly with iterations",
            p16 / p2 >= 3.0,
        );
    }
    if let (Some(m0), Some(m16)) = (get(&mc, 0), get(&mc, 16)) {
        shape_check(
            "MC nearly flat out to 16 iterations (cached U)",
            m16 <= 2.0 * m0.max(1e-9),
        );
    }

    // Pay-as-you-go economics (the paper's cloud motivation; its
    // permutation arm was cut short by "funding limitations").
    let spec = sparkscore_cluster::ClusterSpec::m3_2xlarge(nodes);
    println!("\n### Pay-as-you-go cost at 2016 EMR rates (6 × m3.2xlarge)\n");
    let mut cost_rows = Vec::new();
    if let Some(m) = mc.last() {
        let c = sparkscore_cluster::estimate_cost(&spec, m.virtual_secs);
        cost_rows.push(vec![
            format!("MC @ {} (measured)", m.iterations),
            format!("${:.2}", c.total_usd()),
        ]);
    }
    if let Some(m) = perm.last() {
        let c = sparkscore_cluster::estimate_cost(&spec, m.virtual_secs);
        cost_rows.push(vec![
            format!("permutation @ {} (measured)", m.iterations),
            format!("${:.2}", c.total_usd()),
        ]);
    }
    for (label, secs) in [
        ("MC @ 10000 (paper runtime)", 7036.6),
        ("permutation @ 16 (paper runtime)", 8818.6),
        (
            "permutation @ 10000 (paper rate, extrapolated)",
            509.4 + 10_000.0 * 519.3,
        ),
    ] {
        let c = sparkscore_cluster::estimate_cost(&spec, secs);
        cost_rows.push(vec![label.to_string(), format!("${:.2}", c.total_usd())]);
    }
    print_table("cost", &["run", "estimated cost"], &cost_rows);

    // Machine-readable dump for EXPERIMENTS.md tooling.
    let dump = |ms: &[Measurement]| {
        ms.iter()
            .map(|m| {
                serde_json::json!({
                    "iterations": m.iterations,
                    "virtual_secs": m.virtual_secs,
                    "virtual_std": m.virtual_std,
                    "wall_secs": m.wall_secs,
                })
            })
            .collect::<Vec<_>>()
    };
    let json = serde_json::json!({
        "experiment": "A",
        "scale": opts.scale,
        "runs": opts.runs,
        "mc": dump(&mc),
        "permutation": dump(&perm),
    });
    println!("\nJSON: {json}");
    obs.finish();
}
