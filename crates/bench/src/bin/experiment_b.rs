//! Experiment B — impact of RDD caching on the Monte Carlo method.
//!
//! Regenerates: **Table IV** (inputs), **Figure 4** (10K SNPs, cached vs
//! uncached, iterations 10…10 000), **Figure 5** (1M SNPs, iterations
//! 10…1000), and **Table V** (means and standard deviations, 10K SNPs).
//!
//! Paper workload: 1000 patients on 18 × m3.2xlarge; `--scale N` divides
//! SNPs/sets (default 100 → 100 and 10 000 SNPs for the two inputs).

use sparkscore_bench::{
    context_on, measure_mc, observe, paper, paper_engine, print_table, secs, shape_check,
    HarnessOptions, Measurement,
};
use sparkscore_core::SparkScoreContext;
use sparkscore_data::SyntheticConfig;

fn run_series(
    ctx: &SparkScoreContext,
    iters: &[usize],
    runs: usize,
    cache: bool,
    label: &str,
) -> Vec<Measurement> {
    iters
        .iter()
        .map(|&b| {
            eprintln!("[{label}] B = {b} ...");
            measure_mc(ctx, b, runs, cache)
        })
        .collect()
}

fn figure(title: &str, cached: &[Measurement], nocache: &[Measurement], with_paper: bool) {
    let all: std::collections::BTreeSet<usize> =
        cached.iter().chain(nocache).map(|m| m.iterations).collect();
    let mut rows = Vec::new();
    for &b in &all {
        let fmt = |ms: &[Measurement]| {
            ms.iter()
                .find(|m| m.iterations == b)
                .map_or("N/A".to_string(), |m| {
                    format!("{} ± {}", secs(m.virtual_secs), secs(m.virtual_std))
                })
        };
        let mut row = vec![b.to_string(), fmt(cached), fmt(nocache)];
        if with_paper {
            let pf = |v: Option<f64>| v.map_or("N/A".into(), secs);
            row.push(pf(paper::lookup(
                &paper::TABLE_V_ITERS,
                &paper::TABLE_V_CACHED,
                b,
            )));
            row.push(pf(paper::lookup(
                &paper::TABLE_V_NOCACHE_ITERS,
                &paper::TABLE_V_NOCACHE,
                b,
            )));
        }
        rows.push(row);
    }
    let header: Vec<&str> = if with_paper {
        vec![
            "iterations",
            "cached (measured)",
            "no cache (measured)",
            "cached (paper)",
            "no cache (paper)",
        ]
    } else {
        vec!["iterations", "cached (measured)", "no cache (measured)"]
    };
    print_table(title, &header, &rows);
}

fn check_shapes(cached: &[Measurement], nocache: &[Measurement], label: &str, strict: bool) {
    let get = |ms: &[Measurement], b: usize| {
        ms.iter()
            .find(|m| m.iterations == b)
            .map(|m| m.virtual_secs)
    };
    if let (Some(c), Some(n)) = (get(cached, 100), get(nocache, 100)) {
        shape_check(
            &format!("{label}: caching wins by a large factor at 100 iterations"),
            n / c >= 5.0,
        );
    }
    // Paper: cached@10000 < nocache@200 (Fig 4); cached@1000 < nocache@10
    // (Fig 5). The crossover depth shrinks with --scale (the cached
    // per-iteration floor is fixed scheduling overhead while the uncached
    // cost scales with the data), so it is only enforced near full scale.
    let cached_max = cached.last().map(|m| (m.iterations, m.virtual_secs));
    let nocache_min_pos = nocache
        .iter()
        .find(|m| m.iterations > 0)
        .map(|m| (m.iterations, m.virtual_secs));
    if let (Some((cb, cv)), Some((nb, nv))) = (cached_max, nocache_min_pos) {
        if cb >= 20 * nb {
            let msg = format!("{label}: cached at {cb} iterations beats uncached at {nb}");
            if strict {
                shape_check(&msg, cv < nv);
            } else {
                println!(
                    "info: {msg}: {}",
                    if cv < nv {
                        "holds"
                    } else {
                        "needs fuller scale"
                    }
                );
            }
        }
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let nodes = 18;

    println!("# Experiment B: caching impact on Monte Carlo");
    // The 10K-SNP input is already small; shrinking it by the full factor
    // would leave too little work for the caching effect to be visible, so
    // it only shrinks by a tenth of the requested scale.
    let cfg_small = SyntheticConfig::experiment_b_10k(2).scaled_down((opts.scale / 10).max(1));
    let cfg_large = SyntheticConfig::experiment_b_1m(2).scaled_down(opts.scale);
    print_table(
        "Table IV — input parameters",
        &["input", "patients", "SNPs", "SNP-sets", "nodes", "scale"],
        &[
            vec![
                "10K-row".into(),
                cfg_small.patients.to_string(),
                cfg_small.snps.to_string(),
                cfg_small.snp_sets.to_string(),
                nodes.to_string(),
                format!("1/{}", opts.scale),
            ],
            vec![
                "1M-row".into(),
                cfg_large.patients.to_string(),
                cfg_large.snps.to_string(),
                cfg_large.snp_sets.to_string(),
                nodes.to_string(),
                format!("1/{}", opts.scale),
            ],
        ],
    );

    // Figure 4 / Table V: the small input.
    let engine_small = paper_engine(nodes, &cfg_small);
    let obs_small = observe(&engine_small, "experiment_b_10k");
    let ctx_small = context_on(engine_small, &cfg_small);
    let cached_iters: Vec<usize> = if opts.quick {
        vec![0, 10, 100, 200]
    } else {
        vec![
            0, 10, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 10000,
        ]
    };
    let nocache_iters: Vec<usize> = if opts.quick {
        vec![0, 10, 100]
    } else {
        vec![0, 10, 100, 200]
    };
    let cached = run_series(&ctx_small, &cached_iters, opts.runs, true, "10k cached");
    let nocache = run_series(&ctx_small, &nocache_iters, opts.runs, false, "10k nocache");
    figure(
        "Figure 4 / Table V — 10K SNPs, MC with and without caching (virtual seconds)",
        &cached,
        &nocache,
        true,
    );
    check_shapes(&cached, &nocache, "10K SNPs", opts.scale <= 10);

    // Figure 5: the large input.
    let engine_large = paper_engine(nodes, &cfg_large);
    let obs_large = observe(&engine_large, "experiment_b_1m");
    let ctx_large = context_on(engine_large, &cfg_large);
    let cached_iters_l: Vec<usize> = if opts.quick {
        vec![0, 10, 100]
    } else {
        vec![0, 10, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
    };
    let nocache_iters_l: Vec<usize> = if opts.quick {
        vec![0, 10]
    } else {
        vec![0, 10, 100]
    };
    let cached_l = run_series(&ctx_large, &cached_iters_l, opts.runs, true, "1m cached");
    let nocache_l = run_series(&ctx_large, &nocache_iters_l, opts.runs, false, "1m nocache");
    figure(
        "Figure 5 — 1M SNPs, MC with and without caching (virtual seconds)",
        &cached_l,
        &nocache_l,
        false,
    );
    check_shapes(&cached_l, &nocache_l, "1M SNPs", true);

    let dump = |ms: &[Measurement]| {
        ms.iter()
            .map(|m| {
                serde_json::json!({
                    "iterations": m.iterations,
                    "virtual_secs": m.virtual_secs,
                    "virtual_std": m.virtual_std,
                    "wall_secs": m.wall_secs,
                })
            })
            .collect::<Vec<_>>()
    };
    let json = serde_json::json!({
        "experiment": "B",
        "scale": opts.scale,
        "runs": opts.runs,
        "fig4_cached": dump(&cached),
        "fig4_nocache": dump(&nocache),
        "fig5_cached": dump(&cached_l),
        "fig5_nocache": dump(&nocache_l),
    });
    println!("\nJSON: {json}");
    obs_small.finish();
    obs_large.finish();
}
