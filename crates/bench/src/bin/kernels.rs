//! Score-kernel microbenchmark: the numeric hot loops under the
//! resampling algorithms, measured outside the engine so the numbers
//! attribute purely to kernel shape.
//!
//! Four sections, all host wall-clock, each asserting bitwise-identical
//! results across the compared paths *before* any timing:
//!
//! * **packed vs byte genotypes** — a full contribution pass over the
//!   cohort from the 2-bit column-major [`GenotypeBlock`] (unpack into
//!   thread-local scratch, then score) against the same pass over plain
//!   byte rows. Reports the unpack overhead and the 4x memory ratio that
//!   buys the cache budget.
//! * **contributions vs contributions_into** — the allocating trait
//!   default against the allocation-free kernel writing a reused slice.
//! * **packed-direct bit kernels** — QC (counts, MAF, HWE) and the
//!   Gaussian contribution pass computed straight on the 2-bit columns
//!   via popcount kernels, against the byte-slice oracles. The combined
//!   `direct_over_byte` ratio is gated < 1.0 in CI.
//! * **blocked vs per-iteration resampling** — Algorithm 3 through the
//!   tiled [`perturb_scores_blocked`] GEMM kernel against the one-pass-
//!   per-replicate reference. The ratio is the PR's headline number.
//!
//! Emits `BENCH_kernels.json` (or `--out PATH`) and validates that the
//! emitted file parses back, so CI catches a rotten harness immediately.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkscore_data::GenotypeBlock;
use sparkscore_stats::qc::{check_snp, check_snp_packed, GenotypeCounts, QcThresholds};
use sparkscore_stats::resample::{monte_carlo_blocked, monte_carlo_per_iteration};
use sparkscore_stats::score::{CoxScore, GaussianScore, ScoreModel, Survival};
use sparkscore_stats::scratch;
use sparkscore_stats::skat::SnpSet;

struct Options {
    patients: usize,
    snps: usize,
    replicates: usize,
    tile: usize,
    passes: usize,
    out: String,
}

impl Options {
    fn from_args() -> Self {
        let mut opts = Options {
            patients: 2000,
            snps: 512,
            replicates: 1000,
            tile: sparkscore_stats::resample::MC_TILE,
            passes: 8,
            out: "BENCH_kernels.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> String {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--patients" => opts.patients = take("--patients").parse().expect("integer"),
                "--snps" => opts.snps = take("--snps").parse().expect("integer"),
                "--replicates" => opts.replicates = take("--replicates").parse().expect("integer"),
                "--tile" => opts.tile = take("--tile").parse().expect("integer"),
                "--passes" => opts.passes = take("--passes").parse().expect("integer"),
                "--out" => opts.out = take("--out"),
                other => {
                    eprintln!("unknown argument {other}");
                    eprintln!(
                        "usage: kernels [--patients N] [--snps N] [--replicates N] \
                         [--tile N] [--passes N] [--out PATH]"
                    );
                    std::process::exit(2);
                }
            }
        }
        assert!(
            opts.patients >= 1
                && opts.snps >= 1
                && opts.replicates >= 1
                && opts.tile >= 1
                && opts.passes >= 1
        );
        opts
    }
}

fn random_cohort(n: usize, seed: u64) -> Vec<Survival> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Survival {
            time: rng.gen_range(0.1..60.0),
            event: rng.gen_bool(0.85),
        })
        .collect()
}

fn random_rows(m: usize, n: usize, seed: u64) -> Vec<(u64, Vec<u8>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m as u64)
        .map(|id| (id, (0..n).map(|_| rng.gen_range(0u8..3)).collect()))
        .collect()
}

fn main() {
    let opts = Options::from_args();
    let (n, m) = (opts.patients, opts.snps);
    let cohort = random_cohort(n, 11);
    let model = CoxScore::new(&cohort);
    let rows = random_rows(m, n, 12);
    let block = GenotypeBlock::from_rows(n, &rows);

    // ---- packed vs byte genotype contribution pass ----
    // Identity first: unpack-then-score must reproduce the byte path
    // exactly for every SNP.
    let mut byte_out = vec![0.0f64; m * n];
    for ((_, g), slot) in rows.iter().zip(byte_out.chunks_exact_mut(n)) {
        model.contributions_into(g, slot);
    }
    let mut packed_out = vec![0.0f64; m * n];
    scratch::with_u8(n, |g| {
        for (c, slot) in packed_out.chunks_exact_mut(n).enumerate() {
            block.unpack_into(c, g);
            model.contributions_into(g, slot);
        }
    });
    assert_eq!(
        byte_out, packed_out,
        "packed path must be bitwise identical to the byte path"
    );

    let start = Instant::now();
    for _ in 0..opts.passes {
        for ((_, g), slot) in rows.iter().zip(byte_out.chunks_exact_mut(n)) {
            model.contributions_into(g, slot);
        }
        std::hint::black_box(&byte_out);
    }
    let byte_pass_ns = start.elapsed().as_nanos() as u64;
    let start = Instant::now();
    for _ in 0..opts.passes {
        scratch::with_u8(n, |g| {
            for (c, slot) in packed_out.chunks_exact_mut(n).enumerate() {
                block.unpack_into(c, g);
                model.contributions_into(g, slot);
            }
        });
        std::hint::black_box(&packed_out);
    }
    let packed_pass_ns = start.elapsed().as_nanos() as u64;
    let byte_bytes = (m * n) as u64;
    let packed_bytes = block.packed_bytes() as u64;

    // ---- contributions (allocating) vs contributions_into ----
    let alloc_ref: Vec<Vec<f64>> = rows.iter().map(|(_, g)| model.contributions(g)).collect();
    for (r, slot) in alloc_ref.iter().zip(byte_out.chunks_exact(n)) {
        assert_eq!(
            r.as_slice(),
            slot,
            "contributions and contributions_into must agree bitwise"
        );
    }
    let start = Instant::now();
    for _ in 0..opts.passes {
        for (_, g) in &rows {
            std::hint::black_box(model.contributions(g));
        }
    }
    let alloc_ns = start.elapsed().as_nanos() as u64;
    let start = Instant::now();
    let mut slot = vec![0.0f64; n];
    for _ in 0..opts.passes {
        for (_, g) in &rows {
            model.contributions_into(g, &mut slot);
            std::hint::black_box(&slot);
        }
    }
    let into_ns = start.elapsed().as_nanos() as u64;

    // ---- packed-direct bit kernels: QC and affine score accumulation ----
    // Identity first: the popcount kernels must reproduce the byte oracles
    // exactly — genotype counts, the QC verdict, and the Gaussian
    // contribution pass — for every column before anything is timed.
    let trait_values: Vec<f64> = cohort.iter().map(|s| s.time).collect();
    let gauss = GaussianScore::new(&trait_values);
    let thresholds = QcThresholds::default();
    for (c, (_, g)) in rows.iter().enumerate() {
        let byte_counts = GenotypeCounts::from_dosages(g).expect("dosages in 0..=2");
        let (direct_counts, missing) = GenotypeCounts::from_packed(block.column(c), n);
        assert_eq!(byte_counts, direct_counts, "popcount counts diverge");
        assert_eq!(missing, 0, "bench rows carry no missing calls");
        assert_eq!(
            check_snp(g, &thresholds),
            check_snp_packed(block.column(c), n, &thresholds),
            "QC verdicts must agree"
        );
    }
    let mut gauss_byte_out = vec![0.0f64; m * n];
    for ((_, g), slot) in rows.iter().zip(gauss_byte_out.chunks_exact_mut(n)) {
        gauss.contributions_into(g, slot);
    }
    let mut gauss_direct_out = vec![0.0f64; m * n];
    for (c, slot) in gauss_direct_out.chunks_exact_mut(n).enumerate() {
        assert!(
            gauss.contributions_into_packed(block.column(c), slot),
            "Gaussian must take the packed fast path"
        );
    }
    assert_eq!(
        gauss_byte_out, gauss_direct_out,
        "packed-direct contributions must be bitwise identical to the byte kernel"
    );

    let start = Instant::now();
    for _ in 0..opts.passes {
        for (_, g) in &rows {
            std::hint::black_box(check_snp(g, &thresholds)).ok();
        }
    }
    let qc_byte_pass_ns = start.elapsed().as_nanos() as u64;
    let start = Instant::now();
    for _ in 0..opts.passes {
        for c in 0..m {
            std::hint::black_box(check_snp_packed(block.column(c), n, &thresholds)).ok();
        }
    }
    let qc_direct_pass_ns = start.elapsed().as_nanos() as u64;

    let start = Instant::now();
    for _ in 0..opts.passes {
        for ((_, g), slot) in rows.iter().zip(gauss_byte_out.chunks_exact_mut(n)) {
            gauss.contributions_into(g, slot);
        }
        std::hint::black_box(&gauss_byte_out);
    }
    let score_byte_pass_ns = start.elapsed().as_nanos() as u64;
    let start = Instant::now();
    for _ in 0..opts.passes {
        scratch::with_u8(n, |g| {
            for (c, slot) in gauss_direct_out.chunks_exact_mut(n).enumerate() {
                block.unpack_into(c, g);
                gauss.contributions_into(g, slot);
            }
        });
        std::hint::black_box(&gauss_direct_out);
    }
    let score_unpack_pass_ns = start.elapsed().as_nanos() as u64;
    let start = Instant::now();
    for _ in 0..opts.passes {
        for (c, slot) in gauss_direct_out.chunks_exact_mut(n).enumerate() {
            gauss.contributions_into_packed(block.column(c), slot);
        }
        std::hint::black_box(&gauss_direct_out);
    }
    let packed_direct_pass_ns = start.elapsed().as_nanos() as u64;
    let qc_direct_over_byte = qc_direct_pass_ns as f64 / qc_byte_pass_ns as f64;
    let score_direct_over_byte = packed_direct_pass_ns as f64 / score_byte_pass_ns as f64;
    let direct_over_byte = (qc_direct_pass_ns + packed_direct_pass_ns) as f64
        / (qc_byte_pass_ns + score_byte_pass_ns) as f64;

    // ---- blocked vs per-iteration Monte Carlo resampling ----
    let genotype_rows: Vec<Vec<u8>> = rows.iter().map(|(_, g)| g.clone()).collect();
    let weights = vec![1.0f64; m];
    let sets = vec![SnpSet::new(0, (0..m).collect())];
    let seed = 13;
    let blocked_result = monte_carlo_blocked(
        &model,
        &genotype_rows,
        &weights,
        &sets,
        opts.replicates,
        seed,
        opts.tile,
    );
    let per_iter_result = monte_carlo_per_iteration(
        &model,
        &genotype_rows,
        &weights,
        &sets,
        opts.replicates,
        seed,
    );
    assert_eq!(
        blocked_result, per_iter_result,
        "blocked resampling must be bitwise identical to per-iteration"
    );

    let start = Instant::now();
    std::hint::black_box(monte_carlo_blocked(
        &model,
        &genotype_rows,
        &weights,
        &sets,
        opts.replicates,
        seed,
        opts.tile,
    ));
    let blocked_ns = start.elapsed().as_nanos() as u64;
    let start = Instant::now();
    std::hint::black_box(monte_carlo_per_iteration(
        &model,
        &genotype_rows,
        &weights,
        &sets,
        opts.replicates,
        seed,
    ));
    let per_iter_ns = start.elapsed().as_nanos() as u64;
    let blocked_speedup = per_iter_ns as f64 / blocked_ns as f64;

    let json = serde_json::json!({
        "bench": "kernels",
        "patients": n as u64,
        "snps": m as u64,
        "replicates": opts.replicates as u64,
        "tile": opts.tile as u64,
        "passes": opts.passes as u64,
        "genotype_layout": serde_json::json!({
            "byte_pass_ns": byte_pass_ns,
            "packed_pass_ns": packed_pass_ns,
            "unpack_overhead": packed_pass_ns as f64 / byte_pass_ns as f64,
            "byte_bytes": byte_bytes,
            "packed_bytes": packed_bytes,
            "memory_ratio": byte_bytes as f64 / packed_bytes as f64,
        }),
        "contributions": serde_json::json!({
            "alloc_total_ns": alloc_ns,
            "into_total_ns": into_ns,
            "into_speedup": alloc_ns as f64 / into_ns as f64,
        }),
        "packed_direct": serde_json::json!({
            "qc_byte_pass_ns": qc_byte_pass_ns,
            "qc_direct_pass_ns": qc_direct_pass_ns,
            "qc_direct_over_byte": qc_direct_over_byte,
            "score_byte_pass_ns": score_byte_pass_ns,
            "score_unpack_pass_ns": score_unpack_pass_ns,
            "packed_direct_pass_ns": packed_direct_pass_ns,
            "score_direct_over_byte": score_direct_over_byte,
            "direct_over_byte": direct_over_byte,
        }),
        "resampling": serde_json::json!({
            "blocked_total_ns": blocked_ns,
            "per_iteration_total_ns": per_iter_ns,
            "blocked_speedup": blocked_speedup,
        }),
    });
    let text = serde_json::to_string_pretty(&json).expect("serialize bench report");
    std::fs::write(&opts.out, &text).expect("write bench report");

    // Self-validation: the emitted file must parse back as JSON.
    let read_back = std::fs::read_to_string(&opts.out).expect("re-read bench report");
    serde_json::from_str::<serde_json::Value>(&read_back).expect("bench report must parse");

    println!(
        "genotype pass: byte {:.1} ms vs packed {:.1} ms ({:.2}x unpack overhead, {:.2}x less memory)",
        byte_pass_ns as f64 / 1e6,
        packed_pass_ns as f64 / 1e6,
        packed_pass_ns as f64 / byte_pass_ns as f64,
        byte_bytes as f64 / packed_bytes as f64,
    );
    println!(
        "contributions: alloc {:.1} ms vs into {:.1} ms ({:.2}x)",
        alloc_ns as f64 / 1e6,
        into_ns as f64 / 1e6,
        alloc_ns as f64 / into_ns as f64,
    );
    println!(
        "packed direct: qc byte {:.1} ms vs direct {:.1} ms ({qc_direct_over_byte:.2}x); \
         score byte {:.1} ms vs unpack {:.1} ms vs direct {:.1} ms ({score_direct_over_byte:.2}x); \
         combined {direct_over_byte:.2}x",
        qc_byte_pass_ns as f64 / 1e6,
        qc_direct_pass_ns as f64 / 1e6,
        score_byte_pass_ns as f64 / 1e6,
        score_unpack_pass_ns as f64 / 1e6,
        packed_direct_pass_ns as f64 / 1e6,
    );
    println!(
        "resampling (B={}): per-iteration {:.1} ms vs blocked {:.1} ms ({blocked_speedup:.2}x)",
        opts.replicates,
        per_iter_ns as f64 / 1e6,
        blocked_ns as f64 / 1e6,
    );
    println!("wrote {}", opts.out);
}
