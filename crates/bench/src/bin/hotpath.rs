//! Engine hot-path microbenchmark: the fixed overheads that dominate the
//! paper's many-tiny-stage regime (Algorithms 2 and 3 run B resampling
//! iterations, each a full job over a cached dataset).
//!
//! Three sections, all host wall-clock:
//!
//! * **tiny stages** — B one-task jobs on a cached single-partition
//!   dataset (the resampling iteration shape), against a spawn-per-stage
//!   baseline that replicates the seed engine's per-stage mechanics
//!   (`std::thread::scope` spawn/join plus three `Mutex<Vec<Option<_>>>`
//!   completion writes). The ratio is the PR's headline number.
//! * **shuffle round-trip** — map + reduce over a fresh `reduce_by_key`
//!   each round, exercising the sharded shuffle store's put/batch-get.
//! * **cached scan** — repeated `count()` over a cached dataset, the
//!   cache-hit fast path.
//! * **observability overhead** — the tiny-stage loop under four
//!   interleaved event-bus configurations: no listeners (inactive bus), a
//!   listener counting every event (span allocation, event construction,
//!   dispatch), the always-on flight recorder, and the metrics
//!   `RegistryListener` (which consumes the memory plane's byte-delta
//!   events and per-stage watermarks — the ledger accounting path). Every
//!   active path must stay under 5% overhead for "always-on" to be an
//!   honest claim.
//!
//! Emits `BENCH_hotpath.json` (or `--out PATH`) and validates that the
//! emitted file parses back, so CI catches a rotten harness immediately.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sparkscore_cluster::ClusterSpec;
use sparkscore_rdd::{Engine, EngineEvent, EventListener, FlightRecorder, RegistryListener};

struct Options {
    tiny_b: usize,
    shuffle_rounds: usize,
    scan_rounds: usize,
    out: String,
}

impl Options {
    fn from_args() -> Self {
        let mut opts = Options {
            tiny_b: 2000,
            shuffle_rounds: 30,
            scan_rounds: 300,
            out: "BENCH_hotpath.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> String {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--tiny-b" => opts.tiny_b = take("--tiny-b").parse().expect("integer"),
                "--shuffle-rounds" => {
                    opts.shuffle_rounds = take("--shuffle-rounds").parse().expect("integer")
                }
                "--scan-rounds" => {
                    opts.scan_rounds = take("--scan-rounds").parse().expect("integer")
                }
                "--out" => opts.out = take("--out"),
                other => {
                    eprintln!("unknown argument {other}");
                    eprintln!(
                        "usage: hotpath [--tiny-b N] [--shuffle-rounds N] [--scan-rounds N] [--out PATH]"
                    );
                    std::process::exit(2);
                }
            }
        }
        assert!(opts.tiny_b >= 1 && opts.shuffle_rounds >= 1 && opts.scan_rounds >= 1);
        opts
    }
}

/// The seed engine's per-stage mechanics, reproduced for comparison: one
/// scoped OS thread spawned per stage (a one-task stage spawned exactly
/// one), an atomic task cursor, and three global-mutex completion writes.
fn spawn_per_stage_baseline(stages: usize) -> u64 {
    let start = Instant::now();
    for s in 0..stages {
        let results: Mutex<Vec<Option<u64>>> = Mutex::new(vec![None]);
        let vtasks: Mutex<Vec<Option<u64>>> = Mutex::new(vec![None]);
        let partial: Mutex<Vec<Option<u64>>> = Mutex::new(vec![None]);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= 1 {
                    break;
                }
                let r = (s as u64).wrapping_mul(0x9e37_79b9);
                partial.lock().unwrap()[i] = Some(r);
                results.lock().unwrap()[i] = Some(r);
                vtasks.lock().unwrap()[i] = Some(r ^ 1);
            });
        });
        let out: Vec<u64> = results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("task ran"))
            .collect();
        assert_eq!(out.len(), 1);
        std::hint::black_box(out);
    }
    start.elapsed().as_nanos() as u64
}

/// Minimal active listener: one relaxed counter bump per event. Measures
/// the cost of event construction and dispatch itself, not of any
/// particular consumer.
struct CountingListener(AtomicU64);

impl EventListener for CountingListener {
    fn on_event(&self, _event: &EngineEvent) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn main() {
    let opts = Options::from_args();
    let engine = Engine::builder(ClusterSpec::test_small(4)).build();

    // ---- tiny one-task stages (the resampling iteration shape) ----
    let tiny = engine.parallelize(vec![1u64; 64], 1).cache();
    assert_eq!(tiny.count(), 64); // warm the cache + pool
    let start = Instant::now();
    for _ in 0..opts.tiny_b {
        std::hint::black_box(tiny.count());
    }
    let engine_tiny_ns = start.elapsed().as_nanos() as u64;
    let baseline_tiny_ns = spawn_per_stage_baseline(opts.tiny_b);
    let engine_per_stage = engine_tiny_ns as f64 / opts.tiny_b as f64;
    let baseline_per_stage = baseline_tiny_ns as f64 / opts.tiny_b as f64;
    let speedup = baseline_per_stage / engine_per_stage;

    // ---- shuffle round-trip (fresh map side each round) ----
    let pairs: Vec<(u64, u64)> = (0..4096u64).map(|i| (i % 64, i)).collect();
    let start = Instant::now();
    for _ in 0..opts.shuffle_rounds {
        let reduced = engine
            .parallelize(pairs.clone(), 8)
            .reduce_by_key(8, |a, b| a.wrapping_add(b));
        std::hint::black_box(reduced.count());
    }
    let shuffle_ns = start.elapsed().as_nanos() as u64;

    // ---- cached scan (cache-hit fast path) ----
    let scan = engine
        .parallelize((0..32_768u64).collect::<Vec<_>>(), 8)
        .map(|x| x.wrapping_mul(3))
        .cache();
    assert_eq!(scan.count(), 32_768); // materialize the cache
    let start = Instant::now();
    for _ in 0..opts.scan_rounds {
        std::hint::black_box(scan.count());
    }
    let scan_ns = start.elapsed().as_nanos() as u64;

    // ---- observability overhead on the resampling-shaped tiny stage ----
    // One engine, one cached dataset; only the event bus is toggled
    // between passes, so the measured difference IS the event path
    // (span allocation, event construction, dispatch). The stage is a
    // realistic resampling iteration — 8 tasks over a cached
    // 8-partition dataset, ~128k element-ops per task, the order of one
    // replicate's score accumulation over the paper's cached U RDD (a
    // gene's SNPs × a cohort's patients per task). The degenerate
    // 1-partition no-op stage above measures the engine's fixed overhead,
    // where a single vDSO clock read is already ~4% of the denominator;
    // it cannot distinguish event cost from timer cost.
    // Rotate the configurations in short slices (a few ms each) and
    // score each config by the MEDIAN of its per-rotation difference
    // against the events-off slice of the same rotation. Pairing within
    // a rotation cancels slow drift (all four configs see the same
    // load); the median rejects preemption spikes; and comparing
    // differences — not independent minima — keeps one lucky "off"
    // slice from inflating every overhead on a noisy shared host.
    let slices = 25usize;
    let slice_b = (opts.tiny_b / slices).max(1);
    let obs_engine = Engine::builder(ClusterSpec::test_small(4)).build();
    let obs_data = obs_engine
        .parallelize((0..1_048_576u64).collect::<Vec<_>>(), 8)
        .map(|x| x.wrapping_mul(0x9e37_79b9))
        .cache();
    assert!(obs_data.reduce(|a, b| a.wrapping_add(b)).is_some()); // warm
    let obs_loop = |b: usize| -> f64 {
        let start = Instant::now();
        for _ in 0..b {
            std::hint::black_box(obs_data.reduce(|a, b| a.wrapping_add(b)));
        }
        start.elapsed().as_nanos() as f64 / b as f64
    };
    let events_delivered = Arc::new(CountingListener(AtomicU64::new(0)));
    let recorder = Arc::new(FlightRecorder::new());
    // The registry listener aggregates the memory plane's byte-delta
    // events and per-stage watermarks into counters — with the bus
    // active, every stage also refreshes the memory ledger and emits a
    // watermark, so this config prices the ledger accounting end to end.
    let ledger_listener = Arc::new(RegistryListener::new());
    let mut off_slices = Vec::with_capacity(slices);
    let mut on_slices = Vec::with_capacity(slices);
    let mut recorder_slices = Vec::with_capacity(slices);
    let mut ledger_slices = Vec::with_capacity(slices);
    for _ in 0..slices {
        obs_engine.events().clear();
        off_slices.push(obs_loop(slice_b));
        obs_engine.events().clear();
        obs_engine
            .events()
            .register(Arc::clone(&events_delivered) as Arc<dyn EventListener>);
        on_slices.push(obs_loop(slice_b));
        obs_engine.events().clear();
        obs_engine
            .events()
            .register(Arc::clone(&recorder) as Arc<dyn EventListener>);
        recorder_slices.push(obs_loop(slice_b));
        obs_engine.events().clear();
        obs_engine
            .events()
            .register(Arc::clone(&ledger_listener) as Arc<dyn EventListener>);
        ledger_slices.push(obs_loop(slice_b));
    }
    obs_engine.events().clear();
    let off_per_stage = off_slices.iter().copied().fold(f64::MAX, f64::min);
    let median_diff = |with: &[f64]| -> f64 {
        let mut diffs: Vec<f64> = with.iter().zip(&off_slices).map(|(w, o)| w - o).collect();
        diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite slice times"));
        diffs[diffs.len() / 2]
    };
    let on_per_stage = off_per_stage + median_diff(&on_slices);
    let recorder_per_stage = off_per_stage + median_diff(&recorder_slices);
    let ledger_per_stage = off_per_stage + median_diff(&ledger_slices);
    let overhead_pct = |with: f64| (with / off_per_stage - 1.0) * 100.0;
    let events_on_overhead_pct = overhead_pct(on_per_stage);
    let recorder_overhead_pct = overhead_pct(recorder_per_stage);
    let ledger_overhead_pct = overhead_pct(ledger_per_stage);
    // Too few stages and the loop measures noise, not the event path; the
    // acceptance assert only fires on a statistically meaningful run.
    if opts.tiny_b >= 500 {
        assert!(
            events_on_overhead_pct < 5.0,
            "event path overhead {events_on_overhead_pct:.2}% >= 5% \
             ({on_per_stage:.0} ns/stage vs {off_per_stage:.0} ns/stage off)"
        );
        assert!(
            recorder_overhead_pct < 5.0,
            "flight recorder overhead {recorder_overhead_pct:.2}% >= 5% \
             ({recorder_per_stage:.0} ns/stage vs {off_per_stage:.0} ns/stage off)"
        );
        assert!(
            ledger_overhead_pct < 5.0,
            "ledger accounting overhead {ledger_overhead_pct:.2}% >= 5% \
             ({ledger_per_stage:.0} ns/stage vs {off_per_stage:.0} ns/stage off)"
        );
    }

    let diag = engine.pool_diagnostics();
    let json = serde_json::json!({
        "bench": "hotpath",
        "host_threads": engine.host_threads() as u64,
        "pool_threads_spawned": diag.threads_spawned() as u64,
        "tiny_stage": serde_json::json!({
            "b": opts.tiny_b as u64,
            "engine_total_ns": engine_tiny_ns,
            "engine_per_stage_ns": engine_per_stage,
            "spawn_baseline_total_ns": baseline_tiny_ns,
            "spawn_baseline_per_stage_ns": baseline_per_stage,
            "speedup_vs_spawn": speedup,
        }),
        "shuffle": serde_json::json!({
            "rounds": opts.shuffle_rounds as u64,
            "total_ns": shuffle_ns,
            "per_round_ns": shuffle_ns as f64 / opts.shuffle_rounds as f64,
        }),
        "cached_scan": serde_json::json!({
            "rounds": opts.scan_rounds as u64,
            "total_ns": scan_ns,
            "per_round_ns": scan_ns as f64 / opts.scan_rounds as f64,
        }),
        "observability": serde_json::json!({
            "b": opts.tiny_b as u64,
            "slices": slices as u64,
            "slice_b": slice_b as u64,
            "events_off_per_stage_ns": off_per_stage,
            "events_on_per_stage_ns": on_per_stage,
            "recorder_per_stage_ns": recorder_per_stage,
            "ledger_per_stage_ns": ledger_per_stage,
            "events_on_overhead_pct": events_on_overhead_pct,
            "recorder_overhead_pct": recorder_overhead_pct,
            "ledger_overhead_pct": ledger_overhead_pct,
            "events_delivered": events_delivered.0.load(Ordering::Relaxed),
        }),
    });
    let text = serde_json::to_string_pretty(&json).expect("serialize bench report");
    std::fs::write(&opts.out, &text).expect("write bench report");

    // Self-validation: the emitted file must parse back as JSON.
    let read_back = std::fs::read_to_string(&opts.out).expect("re-read bench report");
    serde_json::from_str::<serde_json::Value>(&read_back).expect("bench report must parse");

    println!(
        "tiny stages: engine {:.1} us/stage vs spawn-per-stage {:.1} us/stage ({speedup:.1}x)",
        engine_per_stage / 1e3,
        baseline_per_stage / 1e3,
    );
    println!(
        "shuffle round-trip: {:.1} us/round over {} rounds",
        shuffle_ns as f64 / opts.shuffle_rounds as f64 / 1e3,
        opts.shuffle_rounds,
    );
    println!(
        "cached scan: {:.1} us/round over {} rounds",
        scan_ns as f64 / opts.scan_rounds as f64 / 1e3,
        opts.scan_rounds,
    );
    println!(
        "observability: events off {:.1} us/stage, on {:.1} us/stage (+{:.2}%), \
         flight recorder {:.1} us/stage (+{:.2}%), ledger {:.1} us/stage (+{:.2}%)",
        off_per_stage / 1e3,
        on_per_stage / 1e3,
        events_on_overhead_pct,
        recorder_per_stage / 1e3,
        recorder_overhead_pct,
        ledger_per_stage / 1e3,
        ledger_overhead_pct,
    );
    println!("wrote {}", opts.out);
}
