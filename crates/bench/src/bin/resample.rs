//! Distributed-resampling benchmark: Algorithm 3 as a replicate-tile ×
//! partition GEMM grid over the engine, against the sequential blocked
//! oracle and a single-task engine run.
//!
//! Three sections, each asserting bitwise-identical results *before*
//! anything is timed (Cox phenotype, so the grid's `U` pass and the
//! oracle share the byte kernel exactly):
//!
//! * **single-task grid** — the full grid on a 1-node cluster over a
//!   1-partition `U` dataset: every tile is one task, the serial
//!   reference in virtual cluster time.
//! * **distributed grid** — the same replicate stream on a 4-node
//!   cluster over a multi-partition `U` dataset. The virtual-time ratio
//!   against the single-task run is the PR's headline number; host
//!   wall-clock is reported alongside for honesty (this harness runs the
//!   simulated cluster on whatever cores the host has).
//! * **adaptive early stopping** — the distributed grid under a
//!   [`StoppingRule`], checked exactly equal (counts, replicates used,
//!   run, saved) to the sequential adaptive oracle. The replicate
//!   reduction `(run + saved) / run` is deterministic and gated in CI.
//!
//! Emits `BENCH_resample.json` (or `--out PATH`) and validates that the
//! emitted file parses back, so CI catches a rotten harness immediately.

use std::time::Instant;

use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, McGridOptions, SparkScoreContext};
use sparkscore_data::{GwasDataset, SyntheticConfig};
use sparkscore_rdd::Engine;
use sparkscore_stats::pvalue::StoppingRule;
use sparkscore_stats::resample::{monte_carlo_adaptive, monte_carlo_blocked, MC_TILE};
use sparkscore_stats::skat::SnpSet;

struct Options {
    patients: usize,
    snps: usize,
    sets: usize,
    replicates: usize,
    partitions: usize,
    min_replicates: usize,
    alpha: f64,
    half_width: f64,
    seed: u64,
    out: String,
}

impl Options {
    fn from_args() -> Self {
        let mut opts = Options {
            patients: 3000,
            snps: 384,
            sets: 48,
            replicates: 1500,
            partitions: 8,
            min_replicates: 100,
            alpha: 0.05,
            half_width: 0.02,
            seed: 29,
            out: "BENCH_resample.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> String {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--patients" => opts.patients = take("--patients").parse().expect("integer"),
                "--snps" => opts.snps = take("--snps").parse().expect("integer"),
                "--sets" => opts.sets = take("--sets").parse().expect("integer"),
                "--replicates" => opts.replicates = take("--replicates").parse().expect("integer"),
                "--partitions" => opts.partitions = take("--partitions").parse().expect("integer"),
                "--min-replicates" => {
                    opts.min_replicates = take("--min-replicates").parse().expect("integer")
                }
                "--alpha" => opts.alpha = take("--alpha").parse().expect("float"),
                "--half-width" => opts.half_width = take("--half-width").parse().expect("float"),
                "--seed" => opts.seed = take("--seed").parse().expect("integer"),
                "--out" => opts.out = take("--out"),
                other => {
                    eprintln!("unknown argument {other}");
                    eprintln!(
                        "usage: resample [--patients N] [--snps N] [--sets N] [--replicates N] \
                         [--partitions N] [--min-replicates N] [--alpha X] [--half-width X] \
                         [--seed N] [--out PATH]"
                    );
                    std::process::exit(2);
                }
            }
        }
        assert!(
            opts.patients >= 1
                && opts.snps >= 1
                && opts.sets >= 1
                && opts.replicates >= 1
                && opts.partitions >= 1
                && opts.min_replicates >= 1
        );
        opts
    }
}

/// Dense oracle inputs indexed by SNP id — the layout under which the
/// sequential oracles share the grid's summation order exactly.
fn dense_oracle_inputs(ds: &GwasDataset) -> (Vec<Vec<u8>>, Vec<f64>, Vec<SnpSet>) {
    let n = ds.phenotypes.len();
    let max_snp = ds
        .sets
        .iter()
        .flat_map(|s| s.members.iter())
        .max()
        .expect("sets are non-empty")
        + 1;
    let mut rows = vec![vec![0u8; n]; max_snp];
    for r in &ds.genotypes {
        if (r.id as usize) < max_snp {
            rows[r.id as usize] = r.dosages.clone();
        }
    }
    let mut weights = vec![0.0f64; max_snp];
    for (j, &w) in ds.weights.iter().enumerate() {
        if j < max_snp {
            weights[j] = w;
        }
    }
    let mut sets = ds.sets.clone();
    sets.sort_by_key(|s| s.id);
    (rows, weights, sets)
}

fn main() {
    let opts = Options::from_args();
    let cfg = SyntheticConfig {
        patients: opts.patients,
        snps: opts.snps,
        snp_sets: opts.sets,
        ..SyntheticConfig::small(opts.seed)
    };
    let ds = GwasDataset::generate(&cfg);
    let (rows, weights, sets) = dense_oracle_inputs(&ds);
    let fixed = McGridOptions::fixed(opts.replicates, opts.seed);
    let rule = StoppingRule::new(opts.min_replicates, opts.alpha, opts.half_width);
    let adaptive = McGridOptions::adaptive(opts.replicates, opts.seed, rule);

    // ---- sequential blocked oracle: the identity reference ----
    // Compute once untimed for the identity asserts, then time a second
    // pass as the host-sequential wall reference.
    let single_ctx = SparkScoreContext::from_memory(
        Engine::builder(ClusterSpec::test_small(1)).build(),
        &ds,
        1,
        AnalysisOptions::default(),
    );
    let oracle = monte_carlo_blocked(
        single_ctx.model(),
        &rows,
        &weights,
        &sets,
        opts.replicates,
        opts.seed,
        MC_TILE,
    );
    let start = Instant::now();
    std::hint::black_box(monte_carlo_blocked(
        single_ctx.model(),
        &rows,
        &weights,
        &sets,
        opts.replicates,
        opts.seed,
        MC_TILE,
    ));
    let oracle_wall_ns = start.elapsed().as_nanos() as u64;

    // ---- single-task grid (1 node, 1 partition: serial tile chain) ----
    // First pass materializes the cached `U` and the broadcast tiles and
    // is the identity assert; the second, warm pass is what we time.
    let grid_run =
        |ctx: &SparkScoreContext, grid_opts: &McGridOptions| -> (sparkscore_core::McGridRun, u64) {
            let u = ctx.u_dataset();
            u.cache();
            let warm = ctx.monte_carlo_grid(&u, grid_opts);
            let grid_observed: Vec<f64> = warm.observed.iter().map(|s| s.score).collect();
            assert_eq!(
                grid_observed, oracle.observed,
                "grid observed statistics must be bitwise identical to the oracle"
            );
            assert_eq!(
                warm.counts_ge, oracle.counts_ge,
                "grid exceedance counts must be bitwise identical to the oracle"
            );
            let start = Instant::now();
            let timed = ctx.monte_carlo_grid(&u, grid_opts);
            let wall_ns = start.elapsed().as_nanos() as u64;
            u.unpersist();
            assert_eq!(timed.counts_ge, oracle.counts_ge, "warm rerun must replay");
            (timed, wall_ns)
        };
    let (single_run, single_wall_ns) = grid_run(&single_ctx, &fixed);

    // ---- distributed grid (4 nodes, multi-partition) ----
    let dist_ctx = SparkScoreContext::from_memory(
        Engine::builder(ClusterSpec::test_small(4)).build(),
        &ds,
        opts.partitions,
        AnalysisOptions::default(),
    );
    let (dist_run, dist_wall_ns) = grid_run(&dist_ctx, &fixed);
    let virtual_speedup = single_run.virtual_secs / dist_run.virtual_secs;
    let wall_speedup = single_wall_ns as f64 / dist_wall_ns as f64;

    // ---- adaptive early stopping on the distributed grid ----
    // Exactly equal to the sequential adaptive oracle: same observed
    // statistics, counts, per-set stop points, and replicate totals.
    let adaptive_oracle = monte_carlo_adaptive(
        dist_ctx.model(),
        &rows,
        &weights,
        &sets,
        opts.replicates,
        opts.seed,
        MC_TILE,
        &rule,
    );
    let u = dist_ctx.u_dataset();
    u.cache();
    assert_eq!(u.count(), ds.genotypes.len()); // warm the cache
    let start = Instant::now();
    let adaptive_run = dist_ctx.monte_carlo_grid(&u, &adaptive);
    let adaptive_wall_ns = start.elapsed().as_nanos() as u64;
    u.unpersist();
    let adaptive_observed: Vec<f64> = adaptive_run.observed.iter().map(|s| s.score).collect();
    assert_eq!(adaptive_observed, oracle.observed);
    assert_eq!(adaptive_run.counts_ge, adaptive_oracle.counts_ge);
    assert_eq!(
        adaptive_run.replicates_used,
        adaptive_oracle.replicates_used
    );
    assert_eq!(adaptive_run.replicates_run, adaptive_oracle.replicates_run);
    assert_eq!(
        adaptive_run.replicates_saved,
        adaptive_oracle.replicates_saved
    );
    let potential = adaptive_run.replicates_run + adaptive_run.replicates_saved;
    let replicate_reduction = potential as f64 / adaptive_run.replicates_run as f64;
    let stopped_early = adaptive_run
        .replicates_used
        .iter()
        .filter(|&&b| b < opts.replicates)
        .count();
    let (tile_hits, tile_misses) = dist_ctx.mc_tile_cache_stats();

    let json = serde_json::json!({
        "bench": "resample",
        "patients": opts.patients as u64,
        "snps": opts.snps as u64,
        "sets": opts.sets as u64,
        "replicates": opts.replicates as u64,
        "partitions": opts.partitions as u64,
        "tile": MC_TILE as u64,
        "seed": opts.seed,
        "identity": "bitwise",
        "oracle": serde_json::json!({
            "wall_ns": oracle_wall_ns,
        }),
        "single_task": serde_json::json!({
            "nodes": 1u64,
            "partitions": 1u64,
            "tiles": single_run.tiles as u64,
            "virtual_secs": single_run.virtual_secs,
            "wall_ns": single_wall_ns,
        }),
        "distributed": serde_json::json!({
            "nodes": 4u64,
            "partitions": opts.partitions as u64,
            "tiles": dist_run.tiles as u64,
            "virtual_secs": dist_run.virtual_secs,
            "wall_ns": dist_wall_ns,
            "virtual_speedup": virtual_speedup,
            "wall_speedup": wall_speedup,
        }),
        "adaptive": serde_json::json!({
            "min_replicates": opts.min_replicates as u64,
            "alpha": opts.alpha,
            "half_width": opts.half_width,
            "replicates_run": adaptive_run.replicates_run,
            "replicates_saved": adaptive_run.replicates_saved,
            "potential": potential,
            "replicate_reduction": replicate_reduction,
            "sets_stopped_early": stopped_early as u64,
            "sets_total": adaptive_run.replicates_used.len() as u64,
            "virtual_secs": adaptive_run.virtual_secs,
            "wall_ns": adaptive_wall_ns,
        }),
        "tile_broadcasts": serde_json::json!({
            "hits": tile_hits,
            "misses": tile_misses,
        }),
    });
    let text = serde_json::to_string_pretty(&json).expect("serialize bench report");
    std::fs::write(&opts.out, &text).expect("write bench report");

    // Self-validation: the emitted file must parse back as JSON.
    let read_back = std::fs::read_to_string(&opts.out).expect("re-read bench report");
    serde_json::from_str::<serde_json::Value>(&read_back).expect("bench report must parse");

    println!(
        "identity: grid == blocked oracle bitwise (observed + counts), B={} tile={}",
        opts.replicates, MC_TILE,
    );
    println!(
        "fixed B: single-task {:.2} vs 4 nodes {:.2} virtual s ({virtual_speedup:.2}x); \
         wall {:.1} vs {:.1} ms ({wall_speedup:.2}x); oracle wall {:.1} ms",
        single_run.virtual_secs,
        dist_run.virtual_secs,
        single_wall_ns as f64 / 1e6,
        dist_wall_ns as f64 / 1e6,
        oracle_wall_ns as f64 / 1e6,
    );
    println!(
        "adaptive: ran {} of {} potential row-replicates ({replicate_reduction:.1}x cut), \
         {stopped_early}/{} sets stopped early, {:.2} virtual s, wall {:.1} ms",
        adaptive_run.replicates_run,
        potential,
        adaptive_run.replicates_used.len(),
        adaptive_run.virtual_secs,
        adaptive_wall_ns as f64 / 1e6,
    );
    println!("tile broadcasts: {tile_misses} shipped, {tile_hits} reused");
    println!("wrote {}", opts.out);
}
