//! Experiment C — auto-tuning: strong scaling and YARN container shapes.
//!
//! Regenerates: **Table VI** + **Figure 6** (strong scaling of the 1M-SNP
//! Monte Carlo workload over 6/12/18 nodes at 10 and 20 iterations) and
//! **Tables VII/VIII** + **Figure 7** (runtime vs container count — 42,
//! 84, 126 containers of matching memory/cores on a 36-node cluster, at
//! 0/10/100 iterations).
//!
//! The paper observes ~2 orders of magnitude between 6 and 18 nodes at 20
//! iterations — far beyond the 3× slot ratio — which we attribute to
//! memory pressure: at 6 nodes the cached `U` RDD exceeds storage memory
//! and every iteration pays a full lineage recomputation. The harness
//! models that by giving the cluster a storage budget proportional to its
//! node count, sized so that `U` fits at 18 nodes but not at 6.

use sparkscore_bench::{
    container_engine, context_on, measure_mc, observe, pressured_engine, print_table, secs,
    shape_check, u_rdd_bytes, HarnessOptions, Measurement,
};
use sparkscore_cluster::ContainerRequest;
use sparkscore_data::SyntheticConfig;

fn main() {
    let opts = HarnessOptions::from_args();
    let cfg = SyntheticConfig::experiment_b_1m(3).scaled_down(opts.scale);

    println!("# Experiment C: auto-tuning (strong scaling + container shapes)");
    print_table(
        "Table VI — strong-scaling inputs",
        &["patients", "SNPs", "SNP-sets", "nodes", "scale"],
        &[vec![
            cfg.patients.to_string(),
            cfg.snps.to_string(),
            cfg.snp_sets.to_string(),
            "6 / 12 / 18".into(),
            format!("1/{}", opts.scale),
        ]],
    );

    // ---- Figure 6: strong scaling ----
    // Per-node storage budget: U fits from ~12 nodes up, thrashes at 6.
    let per_node_budget = (u_rdd_bytes(&cfg) as f64 / 11.0).ceil() as u64;
    let iters: Vec<usize> = if opts.quick {
        vec![0, 10]
    } else {
        vec![0, 10, 20]
    };
    let node_counts = [6u32, 12, 18];
    let mut fig6: Vec<(u32, Vec<Measurement>)> = Vec::new();
    for &nodes in &node_counts {
        let engine = pressured_engine(nodes, per_node_budget * u64::from(nodes), &cfg);
        let obs = observe(&engine, &format!("experiment_c_scaling_{nodes}n"));
        let ctx = context_on(engine, &cfg);
        let series: Vec<Measurement> = iters
            .iter()
            .map(|&b| {
                eprintln!("[scaling] {nodes} nodes, B = {b} ...");
                measure_mc(&ctx, b, opts.runs, true)
            })
            .collect();
        obs.finish();
        fig6.push((nodes, series));
    }
    let rows: Vec<Vec<String>> = iters
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            let mut row = vec![b.to_string()];
            for (_, series) in &fig6 {
                row.push(secs(series[i].virtual_secs));
            }
            row
        })
        .collect();
    print_table(
        "Figure 6 — strong scaling, 1M-SNP MC workload (virtual seconds)",
        &["iterations", "6 nodes", "12 nodes", "18 nodes"],
        &rows,
    );
    let last = iters.len() - 1;
    let t6 = fig6[0].1[last].virtual_secs;
    let t12 = fig6[1].1[last].virtual_secs;
    let t18 = fig6[2].1[last].virtual_secs;
    // 12 and 18 nodes can tie (both fit the cache and the 16 input
    // partitions), so allow measurement jitter.
    shape_check(
        "more nodes are never slower (±2%)",
        t18 <= t12 * 1.02 && t12 <= t6 * 1.02,
    );
    shape_check(
        &format!(
            "memory pressure makes 6 nodes dramatically slower at B = {} ({}s vs {}s)",
            iters[last],
            secs(t6),
            secs(t18)
        ),
        t6 / t18 >= 10.0,
    );

    // ---- Figure 7: container shapes on a fixed 36-node cluster ----
    print_table(
        "Table VII — auto-tuning inputs",
        &["patients", "SNPs", "SNP-sets", "nodes", "scale"],
        &[vec![
            cfg.patients.to_string(),
            cfg.snps.to_string(),
            cfg.snp_sets.to_string(),
            "36".into(),
            format!("1/{}", opts.scale),
        ]],
    );
    let shapes = [
        ContainerRequest::paper_42(),
        ContainerRequest::paper_84(),
        ContainerRequest::paper_126(),
    ];
    print_table(
        "Table VIII — container configurations",
        &[
            "containers",
            "memory/container (GiB)",
            "cores/container",
            "total slots",
        ],
        &shapes
            .iter()
            .map(|s| {
                vec![
                    s.containers.to_string(),
                    format!("{:.1}", s.memory_mib as f64 / 1024.0),
                    s.cores.to_string(),
                    s.total_slots().to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let fig7_iters: Vec<usize> = if opts.quick {
        vec![0, 10]
    } else {
        vec![0, 10, 100]
    };
    let mut fig7: Vec<(u32, Vec<Measurement>)> = Vec::new();
    for shape in &shapes {
        let engine = container_engine(36, *shape, &cfg);
        let obs = observe(
            &engine,
            &format!("experiment_c_{}containers", shape.containers),
        );
        let ctx = context_on(engine, &cfg);
        let series: Vec<Measurement> = fig7_iters
            .iter()
            .map(|&b| {
                eprintln!("[containers] {} containers, B = {b} ...", shape.containers);
                measure_mc(&ctx, b, opts.runs, true)
            })
            .collect();
        obs.finish();
        fig7.push((shape.containers, series));
    }
    let rows: Vec<Vec<String>> = fig7_iters
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            let mut row = vec![b.to_string()];
            for (_, series) in &fig7 {
                row.push(secs(series[i].virtual_secs));
            }
            row
        })
        .collect();
    print_table(
        "Figure 7 — runtime vs container count, 36 nodes (virtual seconds)",
        &[
            "iterations",
            "42 containers",
            "84 containers",
            "126 containers",
        ],
        &rows,
    );
    // Paper: "performance difference for different numbers of containers
    // ... is almost negligible" — same 252 slots in every shape.
    let last = fig7_iters.len() - 1;
    let times: Vec<f64> = fig7.iter().map(|(_, s)| s[last].virtual_secs).collect();
    let spread = (times.iter().cloned().fold(f64::MIN, f64::max)
        - times.iter().cloned().fold(f64::MAX, f64::min))
        / times.iter().sum::<f64>()
        * times.len() as f64;
    shape_check(
        &format!("container count has negligible effect (relative spread {spread:.3})"),
        spread < 0.15,
    );

    let dump = |series: &[(u32, Vec<Measurement>)]| {
        series
            .iter()
            .map(|(k, ms)| {
                serde_json::json!({
                    "key": k,
                    "points": ms.iter().map(|m| serde_json::json!({
                        "iterations": m.iterations,
                        "virtual_secs": m.virtual_secs,
                        "wall_secs": m.wall_secs,
                    })).collect::<Vec<_>>(),
                })
            })
            .collect::<Vec<_>>()
    };
    let json = serde_json::json!({
        "experiment": "C",
        "scale": opts.scale,
        "runs": opts.runs,
        "fig6_nodes": dump(&fig6),
        "fig7_containers": dump(&fig7),
    });
    println!("\nJSON: {json}");
}
