//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each experiment binary (`experiment_a`, `experiment_b`, `experiment_c`,
//! `sensitivity`) builds the paper's workload (optionally scaled down),
//! runs the SparkScore pipelines on the simulated cluster, and prints the
//! same rows/series the paper reports, with the paper's own numbers
//! alongside for shape comparison. The *virtual cluster time* is the
//! quantity corresponding to the paper's y-axes (their wall-clock on EMR);
//! host wall time is reported for transparency.

use std::sync::Arc;
use std::time::Duration;

use sparkscore_cluster::{ClusterSpec, ContainerRequest};
use sparkscore_core::{AnalysisOptions, ResamplingRun, SparkScoreContext};
use sparkscore_data::{GwasDataset, SyntheticConfig};
use sparkscore_rdd::{Engine, EventListener, EventLogListener, StageSummaryListener};

/// Common command-line options for the experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Divide the paper's SNP/set counts by this factor (default keeps the
    /// runs laptop-sized; `--paper-scale` sets it to 1).
    pub scale: usize,
    /// Repetitions per configuration (Tables III/V use 5).
    pub runs: usize,
    /// Skip the most expensive configurations.
    pub quick: bool,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: 100,
            runs: 1,
            quick: false,
        }
    }
}

impl HarnessOptions {
    /// Parse `--scale N`, `--runs N`, `--paper-scale`, `--quick` from the
    /// process arguments; anything else is rejected with usage help.
    pub fn from_args() -> Self {
        let mut opts = HarnessOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    opts.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale requires a positive integer");
                }
                "--runs" => {
                    opts.runs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--runs requires a positive integer");
                }
                "--paper-scale" => opts.scale = 1,
                "--quick" => opts.quick = true,
                other => {
                    eprintln!("unknown argument {other}");
                    eprintln!("usage: [--scale N] [--runs N] [--paper-scale] [--quick]");
                    std::process::exit(2);
                }
            }
        }
        assert!(opts.scale >= 1 && opts.runs >= 1);
        opts
    }
}

/// One measured configuration.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    pub iterations: usize,
    /// Mean virtual cluster seconds over the runs.
    pub virtual_secs: f64,
    /// Standard deviation of virtual seconds over the runs.
    pub virtual_std: f64,
    /// Mean host wall seconds.
    pub wall_secs: f64,
}

/// Mean and (population) standard deviation.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty());
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// DFS block size giving ~16 input partitions for the workload's genotype
/// file — the block-count regime the paper's HDFS layout produced (its
/// 100K-SNP matrix spans ~2 x 128 MiB blocks, the 1M-SNP one ~16), which
/// bounds map-side parallelism below the slot count just as EMR did.
fn block_size_for(cfg: &SyntheticConfig, _slots: usize) -> usize {
    // ~2 characters per dosage plus the SNP id prefix, per line.
    let text_bytes = cfg.snps * (2 * cfg.patients + 8);
    (text_bytes / 16).clamp(16 * 1024, 128 * 1024 * 1024)
}

/// Build an engine shaped like the paper's cluster, with DFS blocks sized
/// for the workload.
pub fn paper_engine(nodes: u32, cfg: &SyntheticConfig) -> Arc<Engine> {
    let slots = nodes as usize * 8;
    Engine::builder(ClusterSpec::m3_2xlarge(nodes))
        .dfs_block_size(block_size_for(cfg, slots))
        .build()
}

/// Engine with an explicit YARN container allocation (experiment C).
pub fn container_engine(nodes: u32, req: ContainerRequest, cfg: &SyntheticConfig) -> Arc<Engine> {
    Engine::builder(ClusterSpec::m3_2xlarge(nodes))
        .dfs_block_size(block_size_for(cfg, req.total_slots() as usize))
        .containers(req)
        .build()
}

/// Engine whose block-cache budget is constrained to `bytes` — used to
/// model the memory pressure behind the paper's superlinear Fig 6 scaling.
pub fn pressured_engine(nodes: u32, cache_budget: u64, cfg: &SyntheticConfig) -> Arc<Engine> {
    let slots = nodes as usize * 8;
    Engine::builder(ClusterSpec::m3_2xlarge(nodes))
        .dfs_block_size(block_size_for(cfg, slots))
        .cache_budget_bytes(cache_budget)
        .build()
}

/// Directory where experiment event logs land: `$SPARKSCORE_EVENTS_DIR`
/// when set (CI points this at a scratch dir), else `target/events`.
pub fn events_dir() -> std::path::PathBuf {
    std::env::var_os("SPARKSCORE_EVENTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/events"))
}

/// Observability attached to one experiment: a JSONL event log on disk
/// plus an in-memory per-stage summary. Create with [`observe`] *before*
/// handing the engine to [`context_on`]; call [`Observability::finish`] at
/// the end to flush the log and print the stage report.
pub struct Observability {
    /// Where the JSONL event log is being written.
    pub log_path: std::path::PathBuf,
    log: Arc<EventLogListener>,
    summary: Arc<StageSummaryListener>,
}

/// Attach an event log (`<events_dir>/<name>.jsonl`, see [`events_dir`])
/// and a stage-summary listener to `engine`.
pub fn observe(engine: &Arc<Engine>, name: &str) -> Observability {
    let log_path = events_dir().join(format!("{name}.jsonl"));
    let log =
        Arc::new(EventLogListener::to_file(&log_path).expect("create event log in events dir"));
    let summary = Arc::new(StageSummaryListener::new());
    engine
        .events()
        .register(Arc::clone(&log) as Arc<dyn EventListener>);
    engine
        .events()
        .register(Arc::clone(&summary) as Arc<dyn EventListener>);
    Observability {
        log_path,
        log,
        summary,
    }
}

impl Observability {
    /// Per-stage summary table (see `StageSummaryListener::report`).
    pub fn report(&self) -> String {
        self.summary.report()
    }

    /// Flush the event log and print the stage summary + log location.
    /// Long runs produce hundreds of stages; the console table keeps the
    /// head and tail and points at the JSONL log for the full stream.
    pub fn finish(&self) {
        let _ = self.log.flush();
        println!("\n== per-stage summary ==");
        let report = self.summary.report();
        let lines: Vec<&str> = report.lines().collect();
        const HEAD: usize = 22; // 2 header lines + first 20 stages
        const TAIL: usize = 10;
        if lines.len() <= HEAD + TAIL + 1 {
            print!("{report}");
        } else {
            for l in &lines[..HEAD] {
                println!("{l}");
            }
            println!("| ... {} stages elided ... |", lines.len() - HEAD - TAIL);
            for l in &lines[lines.len() - TAIL..] {
                println!("{l}");
            }
        }
        println!("event log: {}", self.log_path.display());
        match std::fs::read_to_string(&self.log_path) {
            Ok(text) => match sparkscore_obs::ExecutionTrace::parse(&text) {
                Ok(trace) => print!("{}", trace_digest(&trace)),
                Err(e) => println!("trace digest unavailable: {e}"),
            },
            Err(e) => println!("trace digest unavailable: {e}"),
        }
    }
}

/// Compact critical-path + cache-ROI digest for a finished run: the
/// slowest job's stage chain and bottleneck, plus the run-wide cache
/// economics. (The full per-job breakdown is `trace report <log>`.)
pub fn trace_digest(trace: &sparkscore_obs::ExecutionTrace) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "\n== trace digest ==");
    let paths = sparkscore_obs::critical_paths(trace);
    if let Some(worst) = paths.iter().max_by_key(|p| (p.path_ns, p.job)) {
        let chain: Vec<String> = worst.stages.iter().map(|s| s.stage.to_string()).collect();
        let _ = writeln!(
            out,
            "slowest job: {} of {} jobs, critical path {} over stages [{}]",
            worst.job,
            paths.len(),
            sparkscore_rdd::events::fmt_ns(worst.path_ns),
            chain.join(" -> "),
        );
        if let Some(b) = worst.bottleneck() {
            let kind = match b.kind {
                Some(sparkscore_rdd::StageKind::ShuffleMap) => "ShuffleMap",
                Some(sparkscore_rdd::StageKind::Result) => "Result",
                None => "?",
            };
            let _ = writeln!(
                out,
                "bottleneck: stage {} ({kind}, {} tasks, makespan {})",
                b.stage,
                b.num_tasks,
                sparkscore_rdd::events::fmt_ns(b.makespan_ns),
            );
        }
    } else {
        let _ = writeln!(out, "no jobs in log");
    }
    let _ = writeln!(
        out,
        "{}",
        sparkscore_obs::cache_roi_line(&sparkscore_obs::cache_roi(trace))
    );
    let _ = writeln!(
        out,
        "full analysis: cargo run -p sparkscore-obs --bin trace -- report <log>"
    );
    out
}

/// Build the analysis context for a synthetic workload on `engine`,
/// through the paper's actual input path: serialize the cohort to DFS
/// text files, then build the pipeline with `from_dfs` — so lineage
/// recomputation really pays the HDFS-read-and-parse cost that drives the
/// paper's caching results.
pub fn context_on(engine: Arc<Engine>, cfg: &SyntheticConfig) -> SparkScoreContext {
    let dataset = GwasDataset::generate(cfg);
    let (paths, _) = sparkscore_data::write_dataset_to_dfs(engine.dfs(), "/bench", &dataset)
        .expect("fresh engine has an empty DFS");
    let options = AnalysisOptions {
        reduce_partitions: (engine.layout().total_slots() / 2).clamp(4, 64),
        ..AnalysisOptions::default()
    };
    SparkScoreContext::from_dfs(engine, &paths, options).expect("inputs just written")
}

/// Estimated bytes of the cached `U` RDD for a workload: one `f64` per
/// (SNP, patient) — what Algorithm 3 asks the cluster to hold.
pub fn u_rdd_bytes(cfg: &SyntheticConfig) -> u64 {
    cfg.snps as u64 * cfg.patients as u64 * 8
}

/// Run Monte Carlo resampling and convert to a measurement series entry.
pub fn measure_mc(
    ctx: &SparkScoreContext,
    iterations: usize,
    runs: usize,
    cache: bool,
) -> Measurement {
    let mut virtuals = Vec::with_capacity(runs);
    let mut walls = Vec::with_capacity(runs);
    for r in 0..runs {
        let run = ctx.monte_carlo(iterations, 1000 + r as u64, cache);
        virtuals.push(run.virtual_secs);
        walls.push(run.wall.as_secs_f64());
    }
    let (virtual_secs, virtual_std) = mean_std(&virtuals);
    let (wall_secs, _) = mean_std(&walls);
    Measurement {
        iterations,
        virtual_secs,
        virtual_std,
        wall_secs,
    }
}

/// Run permutation resampling and convert to a measurement.
pub fn measure_perm(ctx: &SparkScoreContext, iterations: usize, runs: usize) -> Measurement {
    let mut virtuals = Vec::with_capacity(runs);
    let mut walls = Vec::with_capacity(runs);
    for r in 0..runs {
        let run = ctx.permutation(iterations, 2000 + r as u64);
        virtuals.push(run.virtual_secs);
        walls.push(run.wall.as_secs_f64());
    }
    let (virtual_secs, virtual_std) = mean_std(&virtuals);
    let (wall_secs, _) = mean_std(&walls);
    Measurement {
        iterations,
        virtual_secs,
        virtual_std,
        wall_secs,
    }
}

/// Convert a resampling run's virtual seconds into a `Duration` (for
/// Criterion's `iter_custom`, so benches report *virtual cluster time*,
/// the paper's y-axis).
pub fn virtual_duration(run: &ResamplingRun) -> Duration {
    Duration::from_secs_f64(run.virtual_secs.max(1e-9))
}

// ---------- table printing ----------

/// Print a Markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Format seconds compactly.
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// A PASS/FAIL shape check line.
pub fn shape_check(name: &str, ok: bool) {
    println!("shape[{}]: {name}", if ok { "PASS" } else { "FAIL" });
}

/// Paper reference numbers (seconds) for side-by-side printing.
pub mod paper {
    /// Table III: Experiment A average runtimes, by iterations.
    pub const TABLE_III_ITERS: [usize; 8] = [0, 2, 4, 8, 16, 100, 1000, 10000];
    pub const TABLE_III_MC: [f64; 8] = [509.4, 532.2, 532.4, 516.4, 542.8, 590.4, 1170.8, 7036.6];
    /// Permutation was only run to 16 iterations (funding limits).
    pub const TABLE_III_PERM: [f64; 5] = [509.4, 1535.2, 2594.4, 4628.4, 8818.6];

    /// Table V: Experiment B (10K SNPs) average runtimes, by iterations.
    pub const TABLE_V_ITERS: [usize; 13] = [
        0, 10, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 10000,
    ];
    pub const TABLE_V_CACHED: [f64; 13] = [
        94.0, 101.0, 132.0, 140.4, 163.6, 178.4, 188.2, 214.8, 225.5, 241.8, 257.4, 283.0, 1928.6,
    ];
    /// No-cache numbers stop at 200 iterations in the paper.
    pub const TABLE_V_NOCACHE: [f64; 3] = [641.4, 5418.0, 10709.0];
    pub const TABLE_V_NOCACHE_ITERS: [usize; 3] = [10, 100, 200];

    /// Lookup a paper value by iteration count; `None` when the paper has
    /// no measurement (printed as "N/A", as the paper does).
    pub fn lookup(iters: &[usize], values: &[f64], i: usize) -> Option<f64> {
        iters
            .iter()
            .position(|&x| x == i)
            .and_then(|p| values.get(p).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
        let (m1, s1) = mean_std(&[5.0]);
        assert_eq!((m1, s1), (5.0, 0.0));
    }

    #[test]
    fn paper_lookup() {
        assert_eq!(
            paper::lookup(&paper::TABLE_III_ITERS, &paper::TABLE_III_MC, 1000),
            Some(1170.8)
        );
        assert_eq!(
            paper::lookup(&paper::TABLE_III_ITERS, &paper::TABLE_III_MC, 3),
            None
        );
    }

    #[test]
    fn u_rdd_bytes_scales() {
        let cfg = SyntheticConfig::small(0);
        assert_eq!(u_rdd_bytes(&cfg), 50 * 200 * 8);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(123.4), "123");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(0.1234), "0.123");
    }

    #[test]
    fn harness_end_to_end_smoke() {
        // A miniature experiment-A style run through the helpers.
        let mut cfg = SyntheticConfig::small(9);
        cfg.patients = 30;
        cfg.snps = 60;
        cfg.snp_sets = 4;
        let ctx = context_on(paper_engine(2, &cfg), &cfg);
        let mc = measure_mc(&ctx, 3, 2, true);
        let perm = measure_perm(&ctx, 3, 1);
        assert!(mc.virtual_secs > 0.0);
        assert!(perm.virtual_secs > mc.virtual_secs * 0.5);
        assert_eq!(mc.iterations, 3);
    }
}
