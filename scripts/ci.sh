#!/usr/bin/env bash
# Repository CI gate: build, test, format, lint.
#
# Run from the repository root:  ./scripts/ci.sh
# Each step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "CI gate passed."
