#!/usr/bin/env bash
# Repository CI gate: build, test, format, lint.
#
# Run from the repository root:  ./scripts/ci.sh
# Each step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== trace smoke: quickstart event log -> trace report/dot =="
events_dir="$(mktemp -d)"
trap 'rm -rf "$events_dir"' EXIT
SPARKSCORE_EVENTS_DIR="$events_dir" cargo run --release -p sparkscore-core --example quickstart > /dev/null
log="$events_dir/quickstart.jsonl"
[ -s "$log" ] || { echo "trace smoke: no event log at $log" >&2; exit 1; }
report="$(cargo run --release -p sparkscore-obs --bin trace -- report "$log")"
[ -n "$report" ] || { echo "trace smoke: empty report" >&2; exit 1; }
dot="$(cargo run --release -p sparkscore-obs --bin trace -- dot "$log")"
[ -n "$dot" ] || { echo "trace smoke: empty dot output" >&2; exit 1; }

echo "== hotpath smoke: microbench runs and emits parseable JSON =="
hotpath_json="$events_dir/BENCH_hotpath_smoke.json"
cargo run --release -p sparkscore-bench --bin hotpath -- \
    --tiny-b 50 --shuffle-rounds 3 --scan-rounds 10 --out "$hotpath_json" > /dev/null
[ -s "$hotpath_json" ] || { echo "hotpath smoke: no JSON at $hotpath_json" >&2; exit 1; }
grep -q '"speedup_vs_spawn"' "$hotpath_json" \
    || { echo "hotpath smoke: JSON missing speedup_vs_spawn" >&2; exit 1; }

echo "== ops smoke: live endpoint serves metrics and a parseable trace dump =="
ops_out="$events_dir/live_ops.out"
cargo build --release -p sparkscore-core --example live_ops
./target/release/examples/live_ops 6 > "$ops_out" &
ops_pid=$!
# Wait for the endpoint line, then scrape it with bash's /dev/tcp (no nc).
ops_port=""
for _ in $(seq 1 50); do
    ops_port="$(sed -n 's/^ops endpoint listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$ops_out")"
    [ -n "$ops_port" ] && break
    sleep 0.1
done
[ -n "$ops_port" ] || { echo "ops smoke: endpoint never came up" >&2; kill "$ops_pid"; exit 1; }
scrape() {
    exec 3<>"/dev/tcp/127.0.0.1/$ops_port"
    printf '%s\n' "$1" >&3
    cat <&3
    exec 3<&- 3>&-
}
metrics="$(scrape metrics)"
grep -q '^# TYPE sparkscore_' <<< "$metrics" \
    || { echo "ops smoke: metrics scrape missing sparkscore_ gauges" >&2; kill "$ops_pid"; exit 1; }
grep -q '^sparkscore_mem_block_cache_used_bytes ' <<< "$metrics" \
    || { echo "ops smoke: metrics scrape missing sparkscore_mem_ gauges" >&2; kill "$ops_pid"; exit 1; }
memory="$(scrape memory)"
for category in block_cache shuffle_store dfs_blocks scratch total; do
    grep -q "^$category " <<< "$memory" \
        || { echo "ops smoke: memory scrape missing $category row" >&2; kill "$ops_pid"; exit 1; }
done
ops_dump="$events_dir/live_ops_trace.jsonl"
scrape trace > "$ops_dump"
[ -s "$ops_dump" ] || { echo "ops smoke: empty trace dump" >&2; kill "$ops_pid"; exit 1; }
cargo run --release -p sparkscore-obs --bin trace -- report --json "$ops_dump" > /dev/null \
    || { echo "ops smoke: trace dump did not parse" >&2; kill "$ops_pid"; exit 1; }
mem_json="$(cargo run --release -p sparkscore-obs --bin trace -- memory --json "$ops_dump")" \
    || { echo "ops smoke: trace memory did not parse the dump" >&2; kill "$ops_pid"; exit 1; }
grep -q '"peak_cache_bytes"' <<< "$mem_json" \
    || { echo "ops smoke: trace memory JSON missing peak_cache_bytes" >&2; kill "$ops_pid"; exit 1; }
wait "$ops_pid"

echo "== service smoke: multi-tenant job service serves queue/tenants/metrics live =="
svc_out="$events_dir/job_service.out"
cargo build --release -p sparkscore-core --example job_service
./target/release/examples/job_service 6 > "$svc_out" &
svc_pid=$!
svc_port=""
for _ in $(seq 1 50); do
    svc_port="$(sed -n 's/^ops endpoint listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$svc_out")"
    [ -n "$svc_port" ] && break
    sleep 0.1
done
[ -n "$svc_port" ] || { echo "service smoke: endpoint never came up" >&2; kill "$svc_pid"; exit 1; }
svc_scrape() {
    exec 3<>"/dev/tcp/127.0.0.1/$svc_port"
    printf '%s\n' "$1" >&3
    cat <&3
    exec 3<&- 3>&-
}
svc_queue="$(svc_scrape queue)"
grep -q '^queue [0-9]*/[0-9]* queued' <<< "$svc_queue" \
    || { echo "service smoke: queue scrape missing header" >&2; kill "$svc_pid"; exit 1; }
grep -q '^flow: submitted ' <<< "$svc_queue" \
    || { echo "service smoke: queue scrape missing flow counters" >&2; kill "$svc_pid"; exit 1; }
svc_tenants="$(svc_scrape tenants)"
for tenant in genomics-lab biobank clinic; do
    grep -q "^$tenant " <<< "$svc_tenants" \
        || { echo "service smoke: tenants scrape missing $tenant row" >&2; kill "$svc_pid"; exit 1; }
done
svc_metrics="$(svc_scrape metrics)"
grep -q '^sparkscore_service_submitted_total ' <<< "$svc_metrics" \
    || { echo "service smoke: metrics scrape missing service counters" >&2; kill "$svc_pid"; exit 1; }
svc_dump="$events_dir/job_service_trace.jsonl"
svc_scrape trace > "$svc_dump"
[ -s "$svc_dump" ] || { echo "service smoke: empty trace dump" >&2; kill "$svc_pid"; exit 1; }
svc_report="$(cargo run --release -p sparkscore-obs --bin trace -- report --json "$svc_dump")" \
    || { echo "service smoke: trace dump did not parse" >&2; kill "$svc_pid"; exit 1; }
grep -q '"cache"' <<< "$svc_report" \
    || { echo "service smoke: trace report JSON missing cache section" >&2; kill "$svc_pid"; exit 1; }
wait "$svc_pid"
grep -q '^answered [0-9]* of [0-9]* queries' "$svc_out" \
    || { echo "service smoke: service did not report its query tally" >&2; exit 1; }

echo "== kernels smoke: packed/blocked kernels match references and emit JSON =="
kernels_json="$events_dir/BENCH_kernels_smoke.json"
# Cohort large enough that the packed-direct vs byte ratio below measures
# kernel cost, not per-call fixed overhead.
cargo run --release -p sparkscore-bench --bin kernels -- \
    --patients 2000 --snps 64 --replicates 40 --tile 8 --passes 2 \
    --out "$kernels_json" > /dev/null
[ -s "$kernels_json" ] || { echo "kernels smoke: no JSON at $kernels_json" >&2; exit 1; }
grep -q '"blocked_speedup"' "$kernels_json" \
    || { echo "kernels smoke: JSON missing blocked_speedup" >&2; exit 1; }
direct_ratio="$(sed -n 's/.*"direct_over_byte": \([0-9.eE+-]*\).*/\1/p' "$kernels_json")"
[ -n "$direct_ratio" ] || { echo "kernels smoke: JSON missing direct_over_byte" >&2; exit 1; }
awk -v r="$direct_ratio" 'BEGIN { exit (r + 0 < 1.0) ? 0 : 1 }' \
    || { echo "kernels smoke: packed-direct kernels slower than byte path (ratio $direct_ratio >= 1.0)" >&2; exit 1; }

echo "== resample smoke: distributed grid matches the oracle and adaptive saves work =="
resample_json="$events_dir/BENCH_resample_smoke.json"
# The binary itself asserts the distributed grid bitwise-identical to the
# sequential blocked oracle (and the adaptive run to the adaptive oracle)
# before timing anything, so a nonzero exit is the identity gate.
cargo run --release -p sparkscore-bench --bin resample -- \
    --patients 400 --snps 128 --sets 16 --replicates 400 --partitions 4 \
    --min-replicates 60 --out "$resample_json" > /dev/null
[ -s "$resample_json" ] || { echo "resample smoke: no JSON at $resample_json" >&2; exit 1; }
grep -q '"identity": "bitwise"' "$resample_json" \
    || { echo "resample smoke: JSON missing the bitwise-identity attestation" >&2; exit 1; }
reduction="$(sed -n 's/.*"replicate_reduction": \([0-9.eE+-]*\).*/\1/p' "$resample_json")"
[ -n "$reduction" ] || { echo "resample smoke: JSON missing replicate_reduction" >&2; exit 1; }
awk -v r="$reduction" 'BEGIN { exit (r + 0 >= 2.0) ? 0 : 1 }' \
    || { echo "resample smoke: adaptive stopping cut replicate work only ${reduction}x (< 2x)" >&2; exit 1; }

echo "CI gate passed."
